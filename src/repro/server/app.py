"""The asyncio HTTP/JSON gateway in front of the session registry.

This is the "millions of users" front door the ROADMAP asks for: one
process, one event loop, many isolated tenants.  The stack is stdlib
only — ``asyncio.start_server`` plus a deliberately minimal HTTP/1.1
parser (request line, headers, ``Content-Length`` bodies, keep-alive) —
because the wire format is the point, not the web framework: every body
is a kind-tagged :mod:`repro.io` JSON document, so the whole service
surface (requests, results, stream events, errors) round-trips through
the same serialisation layer the library already tests.

Request path
------------
``POST /sessions/{name}/requests`` maps the body through
:func:`~repro.io.request_from_dict` →
:meth:`~repro.service.FlexSession.submit` →
:func:`~repro.io.result_to_dict`.  Sessions are synchronous objects, so
the submit runs on a worker-thread pool via ``loop.run_in_executor`` —
safe because backend activation is thread-local (the PR 5 dispatch fix):
each worker thread activates only the serving session's backend.
Admission is gated twice before the pool is touched: the global
:class:`~repro.server.limits.ConcurrencyGate` bounds in-flight work and
the per-tenant :class:`~repro.server.limits.SessionGate` serialises one
session's requests behind a bounded queue.  Saturation of either returns
429 with ``Retry-After``; deadline overruns return 504 after a clean
hand-off (the session is never released while a worker thread still owns
it).

Routes
------
====== ================================ =======================================
Method Path                             Meaning
====== ================================ =======================================
GET    ``/healthz``                     Gateway counters and queue depths
GET    ``/sessions``                    Live session names (LRU order)
PUT    ``/sessions/{name}``             Create a tenant (optional config body)
GET    ``/sessions/{name}``             One tenant's stats block
DELETE ``/sessions/{name}``             Evict (close) a tenant
POST   ``/sessions/{name}/requests``    Serve one service request
POST   ``/sessions/{name}/checkpoint``  Snapshot a durable tenant now
====== ================================ =======================================

With ``persist_root`` configured every tenant is durable: stream events
hit a per-tenant write-ahead log, eviction checkpoints before closing,
and a request for a tenant that is not live but left persisted state
lazily recovers it — restart the gateway on the same ``persist_root``
and tenants simply come back, paying a snapshot-plus-tail replay on
their first request instead of a cold start.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from contextlib import suppress
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from ..core.errors import FlexError, SerializationError
from ..faults.plan import GATEWAY_DISPATCH, FaultInjected, FaultPlan
from ..io.csv_io import RequestStatsLog
from ..io.serialization import (
    error_to_dict,
    request_from_dict,
    result_to_dict,
    wire_safe,
)
from ..persist import PersistenceSuspendedError
from ..service.config import ServiceError, SessionConfig
from .limits import (
    BadRequestError,
    ConcurrencyGate,
    GatewayError,
    InternalError,
    MethodNotAllowedError,
    NotFoundError,
    PayloadTooLargeError,
    RequestTimeoutError,
    ServiceUnavailableError,
)
from .registry import SessionRegistry

__all__ = ["GatewayConfig", "Response", "Gateway", "GatewayServer", "serve"]

#: Reason phrases for the statuses the gateway produces.
_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class GatewayConfig:
    """Everything the gateway needs, in one frozen value object.

    Parameters
    ----------
    host, port:
        TCP bind address for :func:`serve` (``port=0`` picks a free one).
        The in-process transport ignores both.
    max_sessions, idle_ttl:
        :class:`~repro.server.SessionRegistry` capacity cap and idle-TTL
        expiry (seconds; ``None`` disables expiry).
    max_concurrency, max_pending:
        Global admission: requests executing at once on the worker pool,
        and the bounded wait queue behind them.  Defaults: worker count,
        and ``32 * max_concurrency``.
    session_queue_depth:
        Per-tenant bounded queue depth (requests waiting behind the one
        executing before 429s start).
    request_timeout_s:
        Deadline for one request's execution phase; ``None`` disables.
    max_body_bytes:
        Largest accepted request body (413 beyond it).
    retry_after_s:
        The ``Retry-After`` hint on 429 responses.
    workers:
        Worker-thread pool size.  Default: ``min(32, cpu_count + 4)``.
    session_defaults:
        :class:`~repro.service.SessionConfig` for tenants created without
        an explicit config.
    persist_root:
        Directory under which each tenant persists (WAL + snapshots) as
        ``<persist_root>/<name>``; enables lazy recovery after restarts.
        ``None`` (the default) keeps every session in-memory only.
    access_log:
        Path or open text handle receiving one CSV
        :class:`~repro.service.RequestStats` row per served request
        (through the concurrency-safe :class:`~repro.io.RequestStatsLog`
        appender); ``None`` disables the access log.
    fault_plan:
        A :class:`~repro.faults.FaultPlan` (or its JSON/dict spec) fired
        at the gateway's own ``gateway.dispatch`` site on every worker
        dispatch — the chaos knob for the HTTP layer itself, independent
        of any per-session plan.  ``None`` resolves ``REPRO_FAULTS`` from
        the environment.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_sessions: int = 4096
    idle_ttl: Optional[float] = None
    max_concurrency: Optional[int] = None
    max_pending: Optional[int] = None
    session_queue_depth: int = 8
    request_timeout_s: Optional[float] = 30.0
    max_body_bytes: int = 8 * 1024 * 1024
    retry_after_s: float = 0.05
    workers: Optional[int] = None
    session_defaults: Optional[SessionConfig] = None
    access_log: Optional[Union[str, Path, Any]] = None
    persist_root: Optional[str] = None
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        import os

        if self.workers is None:
            object.__setattr__(
                self, "workers", min(32, (os.cpu_count() or 1) + 4)
            )
        if self.max_concurrency is None:
            object.__setattr__(self, "max_concurrency", self.workers)
        if self.max_pending is None:
            object.__setattr__(self, "max_pending", 32 * self.max_concurrency)
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be positive, got {self.request_timeout_s}"
            )
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.persist_root is not None and not isinstance(
            self.persist_root, str
        ):
            object.__setattr__(self, "persist_root", str(self.persist_root))
        if self.fault_plan is None:
            object.__setattr__(self, "fault_plan", FaultPlan.from_env())
        elif not isinstance(self.fault_plan, FaultPlan):
            try:
                object.__setattr__(
                    self, "fault_plan", FaultPlan.from_spec(self.fault_plan)
                )
            except ValueError as error:
                raise ValueError(f"invalid fault_plan: {error}") from error


@dataclass(frozen=True)
class Response:
    """One gateway response: status, JSON payload, optional retry hint."""

    status: int
    payload: dict
    retry_after: Optional[float] = None

    def encode(self, close: bool = False) -> bytes:
        """The full HTTP/1.1 response bytes for this payload.

        Strict JSON: non-finite floats anywhere in the payload (a window
        summary over an infinite measure value, say) leave as the
        :func:`~repro.io.float_to_wire` sentinels instead of the invalid
        ``NaN``/``Infinity`` literals ``allow_nan=True`` would emit.
        """
        body = json.dumps(wire_safe(self.payload), allow_nan=False).encode("utf-8")
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            "content-type: application/json",
            f"content-length: {len(body)}",
            "connection: " + ("close" if close else "keep-alive"),
        ]
        if self.retry_after is not None:
            lines.append(f"retry-after: {self.retry_after:g}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class _MemoryWriter:
    """Duck-typed ``StreamWriter`` feeding a peer reader directly.

    The in-process transport of the load harness: client and server each
    hold a real :class:`asyncio.StreamReader` fed by the peer's writer, so
    thousands of concurrent tenants exercise the full HTTP path without a
    socket (or file descriptor) each.
    """

    def __init__(self, peer: asyncio.StreamReader) -> None:
        self._peer = peer
        self._closed = False

    def write(self, data: bytes) -> None:
        if not self._closed:
            self._peer.feed_data(data)

    async def drain(self) -> None:
        await asyncio.sleep(0)  # yield, like a real transport under load

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._peer.feed_eof()

    def is_closing(self) -> bool:
        return self._closed

    async def wait_closed(self) -> None:
        return None

    def get_extra_info(self, name: str, default=None):
        return default


class Gateway:
    """The multi-tenant request broker behind the HTTP front-end.

    Owns the :class:`~repro.server.SessionRegistry`, the admission gates,
    the worker-thread pool and the access log.  :meth:`handle` is the
    transport-independent core — the HTTP glue (:meth:`handle_connection`)
    and the in-process transport (:meth:`connect_in_process`) both feed
    it.
    """

    def __init__(
        self, config: Optional[GatewayConfig] = None, **overrides
    ) -> None:
        if config is None:
            config = GatewayConfig(**overrides)
        elif overrides:
            raise ValueError(
                "pass either a GatewayConfig or keyword overrides, not both"
            )
        self.config = config
        self.registry = SessionRegistry(
            max_sessions=config.max_sessions,
            idle_ttl=config.idle_ttl,
            default_config=config.session_defaults,
            queue_depth=config.session_queue_depth,
            retry_after=config.retry_after_s,
            persist_root=config.persist_root,
        )
        self.gate = ConcurrencyGate(
            limit=config.max_concurrency,
            max_pending=config.max_pending,
            retry_after=config.retry_after_s,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="repro-gateway"
        )
        self.access_log: Optional[RequestStatsLog] = (
            None
            if config.access_log is None
            else RequestStatsLog(config.access_log)
        )
        self.served = 0
        self.failed = 0
        self.timeouts = 0
        self.sweeper_failures = 0
        self._connections: set = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Transport-independent request handling
    # ------------------------------------------------------------------ #
    async def handle(self, method: str, path: str, body: bytes = b"") -> Response:
        """Serve one request; every failure becomes a structured error body."""
        try:
            if len(body) > self.config.max_body_bytes:
                raise PayloadTooLargeError(
                    f"body of {len(body)} bytes exceeds the "
                    f"{self.config.max_body_bytes}-byte budget"
                )
            return await self._route(method.upper(), path)(body)
        except GatewayError as error:
            self.failed += 1
            retry_after = error.retry_after
            if retry_after is None and error.status in (429, 503):
                # Every backoff-shaped rejection carries a hint, even
                # when raised somewhere that had no gate to ask.
                retry_after = self.config.retry_after_s
            return Response(
                error.status, error_to_dict(error), retry_after=retry_after
            )
        except PersistenceSuspendedError as error:
            # Must precede the FlexError branch: a suspended WAL is a
            # *server* condition, not a client mistake.  Only operations
            # that need the degraded component (an explicit checkpoint)
            # land here; regular serving continues, so the client should
            # simply retry after the circuit breaker's next probe.
            self.failed += 1
            wrapped = ServiceUnavailableError(
                str(error), retry_after=self.config.retry_after_s
            )
            return Response(
                wrapped.status,
                error_to_dict(wrapped),
                retry_after=wrapped.retry_after,
            )
        except (SerializationError, ServiceError, FlexError) as error:
            # Library-level rejections of a well-formed HTTP request:
            # malformed wire payloads, unknown schedulers, invalid
            # flex-offers — all client mistakes, all 400s.
            self.failed += 1
            wrapped = BadRequestError(str(error))
            return Response(wrapped.status, error_to_dict(wrapped))
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - the 500 boundary
            self.failed += 1
            wrapped = InternalError(f"{type(error).__name__}: {error}")
            return Response(wrapped.status, error_to_dict(wrapped))

    def _route(self, method: str, path: str):
        """Resolve ``(method, path)`` to a body-consuming handler."""
        parts = [part for part in path.split("/") if part]
        if parts == ["healthz"]:
            if method != "GET":
                raise MethodNotAllowedError(f"{method} not allowed on {path}")
            return self._handle_health
        if not parts or parts[0] != "sessions" or len(parts) > 3:
            raise NotFoundError(f"no route for {path!r}")
        if len(parts) == 1:
            if method != "GET":
                raise MethodNotAllowedError(f"{method} not allowed on {path}")
            return self._handle_list
        name = parts[1]
        if len(parts) == 2:
            if method == "PUT":
                return lambda body: self._handle_create(name, body)
            if method == "GET":
                return lambda body: self._handle_stats(name, body)
            if method == "DELETE":
                return lambda body: self._handle_evict(name, body)
            raise MethodNotAllowedError(f"{method} not allowed on {path}")
        if parts[2] == "requests":
            if method != "POST":
                raise MethodNotAllowedError(f"{method} not allowed on {path}")
            return lambda body: self._handle_submit(name, body)
        if parts[2] == "checkpoint":
            if method != "POST":
                raise MethodNotAllowedError(f"{method} not allowed on {path}")
            return lambda body: self._handle_checkpoint(name, body)
        raise NotFoundError(f"no route for {path!r}")

    @staticmethod
    def _parse_json(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequestError(f"malformed JSON body: {error}") from error

    async def _handle_health(self, body: bytes) -> Response:
        stats = self.stats()
        healthy = all(
            state == "ok"
            for part, state in stats["components"].items()
            if not (
                part in ("persistence", "cluster") and state == "disabled"
            )
        )
        status = "ok" if healthy else "degraded"
        return Response(200, {"kind": "health", "status": status, **stats})

    async def _handle_list(self, body: bytes) -> Response:
        return Response(
            200, {"kind": "sessions", "sessions": self.registry.names()}
        )

    async def _handle_create(self, name: str, body: bytes) -> Response:
        payload = self._parse_json(body)
        config = None
        if payload is not None:
            if not isinstance(payload, dict):
                raise BadRequestError("session config must be a JSON object")
            config = SessionConfig.from_dict(payload)
        session = self.registry.create(name, config)
        return Response(
            201,
            {
                "kind": "session",
                "name": name,
                "backend": session.backend_name,
                "config": session.config.as_dict(),
            },
        )

    async def _handle_stats(self, name: str, body: bytes) -> Response:
        entry = self.registry.entry(name)
        return Response(200, {"kind": "session-stats", **entry.stats()})

    async def _handle_evict(self, name: str, body: bytes) -> Response:
        self.registry.evict(name)
        return Response(200, {"kind": "evicted", "name": name})

    async def _handle_submit(self, name: str, body: bytes) -> Response:
        payload = self._parse_json(body)
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        request = request_from_dict(payload)
        entry = self.registry.entry(name)
        async with self.gate.admit():
            async with entry.gate.admit():
                result = await self._submit_on_worker(entry.session, request)
        entry.served += 1
        self.served += 1
        if self.access_log is not None:
            self.access_log.append(result.stats)
        return Response(200, result_to_dict(result))

    async def _handle_checkpoint(self, name: str, body: bytes) -> Response:
        """Snapshot a durable tenant on demand (both gates held, like a
        request — a checkpoint must not run concurrently with a submit on
        the same session)."""
        entry = self.registry.entry(name)
        loop = asyncio.get_running_loop()
        async with self.gate.admit():
            async with entry.gate.admit():
                stats = await loop.run_in_executor(
                    self._executor, entry.session.checkpoint
                )
        return Response(200, {"kind": "checkpoint", "name": name, **stats})

    async def _submit_on_worker(self, session, request):
        """Run one submit on the pool, under the configured deadline.

        On timeout the worker future is cancelled if it has not started;
        if it is already running, the (timed-out) request is awaited to
        completion before the session gate is released — a worker thread
        never touches a session the gateway considers free.
        """
        loop = asyncio.get_running_loop()
        self._fire_dispatch()
        future = loop.run_in_executor(self._executor, session.submit, request)
        timeout = self.config.request_timeout_s
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            self.timeouts += 1
            future.cancel()
            with suppress(Exception, asyncio.CancelledError):
                await future
            raise RequestTimeoutError(
                f"request exceeded the {timeout:g}s deadline"
            ) from None

    def _fire_dispatch(self) -> None:
        """Fire the ``gateway.dispatch`` injection site, if a plan is set.

        The gateway has no worker *processes*, so a ``kill`` rule degrades
        to ``raise`` here — same convention as the thread-pool backends.
        """
        plan = self.config.fault_plan
        if plan is not None and plan.fire(GATEWAY_DISPATCH) is not None:
            raise FaultInjected(
                f"injected fault at {GATEWAY_DISPATCH} (kill)"
            )

    # ------------------------------------------------------------------ #
    # HTTP transport
    # ------------------------------------------------------------------ #
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer
    ) -> None:
        """Serve one HTTP/1.1 keep-alive connection until EOF."""
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, _version = (
                        request_line.decode("latin-1").split(None, 2)
                    )
                except ValueError:
                    error = BadRequestError("malformed request line")
                    writer.write(
                        Response(400, error_to_dict(error)).encode(close=True)
                    )
                    await writer.drain()
                    break
                headers = await self._read_headers(reader)
                if headers is None:
                    break
                length = int(headers.get("content-length", "0") or "0")
                if length > self.config.max_body_bytes:
                    # Refuse before buffering: the body never gets read,
                    # so the connection cannot be reused afterwards.
                    error = PayloadTooLargeError(
                        f"declared body of {length} bytes exceeds the "
                        f"{self.config.max_body_bytes}-byte budget"
                    )
                    writer.write(
                        Response(413, error_to_dict(error)).encode(close=True)
                    )
                    await writer.drain()
                    break
                body = await reader.readexactly(length) if length else b""
                path = target.partition("?")[0]
                response = await self.handle(method, path, body)
                close = headers.get("connection", "").lower() == "close"
                writer.write(response.encode(close=close))
                await writer.drain()
                if close:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            # CancelledError too: server shutdown cancels in-flight
            # connection tasks while they are closing their writer.
            with suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    @staticmethod
    async def _read_headers(reader: asyncio.StreamReader):
        """The request's header map (lower-cased), or ``None`` on EOF."""
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                return headers
            if not line:
                return None
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()

    def connect_in_process(self):
        """A client ``(reader, writer)`` pair served without a socket.

        The server side of the pair runs :meth:`handle_connection` as a
        task on the current loop; the client side speaks ordinary
        HTTP/1.1 over it.  This is the transport the load harness uses to
        hold thousands of concurrent tenant connections without consuming
        a file descriptor per tenant.
        """
        client_reader = asyncio.StreamReader()
        server_reader = asyncio.StreamReader()
        client_writer = _MemoryWriter(server_reader)
        server_writer = _MemoryWriter(client_reader)
        task = asyncio.ensure_future(
            self.handle_connection(server_reader, server_writer)
        )
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)
        return client_reader, client_writer

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Gateway counters: served/failed totals, gates, registry, health.

        ``components`` is the operator-facing roll-up: one status word per
        subsystem (the sweeper goes ``degraded`` after any swallowed sweep
        failure; persistence mirrors
        :meth:`~repro.server.SessionRegistry.persistence_health`; cluster
        mirrors :meth:`~repro.server.SessionRegistry.cluster_health`,
        ``disabled`` when no tenant fans out to remote shard workers).
        """
        registry = self.registry.stats()
        persistence = self.registry.persistence_health()
        cluster = self.registry.cluster_health()
        sweeper_ok = (
            self.sweeper_failures == 0 and registry["sweep_failures"] == 0
        )
        payload = {
            "served": self.served,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "sweeper_failures": self.sweeper_failures,
            "gate": self.gate.stats(),
            "registry": registry,
            "workers": self.config.workers,
            "persistence": persistence,
            "cluster": cluster,
            "components": {
                "gateway": "ok",
                "registry": "ok",
                "sweeper": "ok" if sweeper_ok else "degraded",
                "persistence": persistence["status"],
                "cluster": cluster["status"],
            },
        }
        if self.config.fault_plan is not None:
            payload["faults"] = self.config.fault_plan.stats()
        return payload

    def close(self) -> None:
        """Shut the pool down and close every session.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        self.registry.close()
        if self.access_log is not None:
            self.access_log.close()


class GatewayServer:
    """A started gateway bound to a TCP port (what :func:`serve` returns)."""

    def __init__(self, gateway: Gateway, server: asyncio.AbstractServer) -> None:
        self.gateway = gateway
        self.server = server
        self._sweeper: Optional[asyncio.Task] = None
        if gateway.config.idle_ttl is not None:
            self._sweeper = asyncio.ensure_future(
                self._sweep_loop(gateway.config.idle_ttl / 2)
            )

    async def _sweep_loop(self, interval: float) -> None:
        """Sweep idle sessions forever; one bad sweep never kills the loop.

        An exception escaping :meth:`SessionRegistry.sweep` (it already
        swallows per-session close failures, so this is registry-level
        breakage) is counted on the gateway and the loop keeps ticking —
        a wedged sweeper would silently turn the TTL off.
        """
        while True:
            await asyncio.sleep(interval)
            try:
                self.gateway.registry.sweep()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - the sweeper must survive
                self.gateway.sweeper_failures += 1

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self.server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        """The bound host address."""
        return self.server.sockets[0].getsockname()[0]

    async def close(self) -> None:
        """Stop accepting, drain the pool, close every session."""
        if self._sweeper is not None:
            self._sweeper.cancel()
            with suppress(asyncio.CancelledError):
                await self._sweeper
        self.server.close()
        await self.server.wait_closed()
        self.gateway.close()

    async def __aenter__(self) -> "GatewayServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def serve(
    config: Optional[GatewayConfig] = None, **overrides
) -> GatewayServer:
    """Start the gateway on its configured TCP address.

    Usage::

        async with await serve(port=0, max_sessions=100) as server:
            print(f"listening on {server.host}:{server.port}")
            ...

    Returns a :class:`GatewayServer`; ``await server.close()`` (or the
    ``async with`` exit) stops the listener and closes every session.
    """
    gateway = Gateway(config, **overrides)
    server = await asyncio.start_server(
        gateway.handle_connection, gateway.config.host, gateway.config.port
    )
    return GatewayServer(gateway, server)
