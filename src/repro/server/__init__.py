"""``repro.server`` — the async multi-tenant HTTP/JSON gateway.

One process, one event loop, many isolated tenants: each named session
owns its own :class:`~repro.service.FlexSession` (engine, backend,
cache budgets), requests travel as the kind-tagged :mod:`repro.io` wire
format, and overload is answered with bounded queues and 429s instead of
unbounded growth.

>>> import asyncio
>>> from repro.server import Gateway, GatewayClient
>>> async def demo():
...     gateway = Gateway(max_sessions=4)
...     try:
...         client = GatewayClient.in_process(gateway)
...         created = await client.create_session(
...             "tenant-a", {"backend": "reference"}
...         )
...         health = await client.health()
...         await client.close()
...         return created.status, health.payload["status"]
...     finally:
...         gateway.close()
>>> asyncio.run(demo())
(201, 'ok')
"""

from .app import Gateway, GatewayConfig, GatewayServer, Response, serve
from .client import ClientResponse, GatewayClient
from .limits import (
    BadRequestError,
    ConcurrencyGate,
    GatewayError,
    InternalError,
    MethodNotAllowedError,
    NotFoundError,
    PayloadTooLargeError,
    RegistryFullError,
    RequestTimeoutError,
    SaturatedError,
    SessionExistsError,
    SessionGate,
    UnknownSessionError,
)
from .registry import SessionEntry, SessionRegistry

__all__ = [
    # gateway
    "serve",
    "Gateway",
    "GatewayConfig",
    "GatewayServer",
    "Response",
    # client
    "GatewayClient",
    "ClientResponse",
    # registry
    "SessionRegistry",
    "SessionEntry",
    # backpressure
    "ConcurrencyGate",
    "SessionGate",
    # errors
    "GatewayError",
    "BadRequestError",
    "UnknownSessionError",
    "NotFoundError",
    "MethodNotAllowedError",
    "SessionExistsError",
    "PayloadTooLargeError",
    "SaturatedError",
    "RegistryFullError",
    "RequestTimeoutError",
    "InternalError",
]
