"""Backpressure primitives and the gateway's structured error taxonomy.

The gateway promises two things under overload: it never queues without
bound, and every rejection tells the client *why* and *when to retry*.
Both promises live here:

* :class:`GatewayError` and its subclasses — one class per HTTP status the
  gateway can produce, each carrying a stable machine-readable ``code``.
  The JSON error bodies round-trip through
  :func:`repro.io.error_to_dict` / :func:`repro.io.error_from_dict`, so a
  client can rebuild the typed error from a response body.
* :class:`ConcurrencyGate` — the global admission semaphore.  At most
  ``limit`` requests execute at once; at most ``max_pending`` more may
  wait.  Anything beyond that is rejected immediately with a 429 and a
  ``Retry-After`` hint instead of growing a queue.
* :class:`SessionGate` — the per-tenant bounded queue.  A
  :class:`~repro.service.FlexSession` is a synchronous, stateful object,
  so its requests (``StreamRequest`` ingest in particular) execute one at
  a time; up to ``depth`` requests may wait in line, the rest get a 429.

Both gates are asyncio-native and lazily create their primitives inside
the running loop (construction is therefore loop-free and safe on
Python 3.9, where asyncio primitives bind a loop eagerly).
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import Optional

from ..core.errors import FlexError

__all__ = [
    "GatewayError",
    "BadRequestError",
    "UnknownSessionError",
    "NotFoundError",
    "MethodNotAllowedError",
    "SessionExistsError",
    "PayloadTooLargeError",
    "SaturatedError",
    "RegistryFullError",
    "ServiceUnavailableError",
    "RequestTimeoutError",
    "InternalError",
    "error_class_for_code",
    "ConcurrencyGate",
    "SessionGate",
]


class GatewayError(FlexError):
    """Base of every error the gateway turns into an HTTP response.

    Attributes
    ----------
    status:
        The HTTP status code of the response (class attribute).
    code:
        Stable machine-readable error code, the ``"error"`` field of the
        structured JSON body (class attribute).
    retry_after:
        Optional seconds-until-retry hint; when set, the response carries
        a ``Retry-After`` header (429 responses always set it).
    """

    status: int = 500
    code: str = "internal"

    def __init__(self, detail: str, retry_after: Optional[float] = None) -> None:
        super().__init__(detail)
        self.detail = detail
        self.retry_after = retry_after


class BadRequestError(GatewayError):
    """400 — malformed JSON, an invalid wire payload or bad parameters."""

    status = 400
    code = "bad-request"


class UnknownSessionError(GatewayError):
    """404 — the named session does not exist (or was evicted)."""

    status = 404
    code = "unknown-session"


class NotFoundError(GatewayError):
    """404 — no route matches the request path."""

    status = 404
    code = "not-found"


class MethodNotAllowedError(GatewayError):
    """405 — the route exists but not for this HTTP method."""

    status = 405
    code = "method-not-allowed"


class SessionExistsError(GatewayError):
    """409 — create refused: a session with that name is already live."""

    status = 409
    code = "session-exists"


class PayloadTooLargeError(GatewayError):
    """413 — the request body exceeds the gateway's byte budget."""

    status = 413
    code = "payload-too-large"


class SaturatedError(GatewayError):
    """429 — a bounded queue (global or per-session) is full."""

    status = 429
    code = "saturated"


class RegistryFullError(GatewayError):
    """429 — session cap reached and every session is busy (none evictable)."""

    status = 429
    code = "registry-full"


class ServiceUnavailableError(GatewayError):
    """503 — a required component is degraded (e.g. suspended persistence).

    Raised for operations that *need* the degraded component — an explicit
    checkpoint while the session's WAL is suspended — while regular
    serving continues.  Carries ``retry_after`` so clients back off until
    the circuit breaker re-enables the component.
    """

    status = 503
    code = "degraded"


class RequestTimeoutError(GatewayError):
    """504 — the request exceeded the gateway's execution deadline."""

    status = 504
    code = "timeout"


class InternalError(GatewayError):
    """500 — an unexpected failure inside the gateway."""

    status = 500
    code = "internal"


#: ``code -> class`` for rebuilding typed errors from wire payloads.
_ERRORS_BY_CODE = {
    cls.code: cls
    for cls in (
        BadRequestError,
        UnknownSessionError,
        NotFoundError,
        MethodNotAllowedError,
        SessionExistsError,
        PayloadTooLargeError,
        SaturatedError,
        RegistryFullError,
        ServiceUnavailableError,
        RequestTimeoutError,
        InternalError,
    )
}


def error_class_for_code(code: str) -> type:
    """The :class:`GatewayError` subclass for a wire error ``code``.

    Unknown codes map to :class:`GatewayError` itself so a newer server's
    errors still deserialise on an older client.
    """
    return _ERRORS_BY_CODE.get(code, GatewayError)


class ConcurrencyGate:
    """Global admission control: bounded concurrency, bounded waiting.

    ``limit`` requests run at once; up to ``max_pending`` more wait for a
    slot.  A request arriving beyond that is refused with
    :class:`SaturatedError` (HTTP 429) carrying ``retry_after`` — the
    queue never grows without bound.

    >>> import asyncio
    >>> gate = ConcurrencyGate(limit=1, max_pending=0, retry_after=0.5)
    >>> async def occupied():
    ...     async with gate.admit():
    ...         try:
    ...             async with gate.admit():
    ...                 pass
    ...         except SaturatedError as error:
    ...             return error.status, error.retry_after
    >>> asyncio.run(occupied())
    (429, 0.5)
    """

    def __init__(
        self, limit: int, max_pending: int, retry_after: float = 1.0
    ) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if max_pending < 0:
            raise ValueError(f"max_pending must be >= 0, got {max_pending}")
        self.limit = limit
        self.max_pending = max_pending
        self.retry_after = retry_after
        self.admitted = 0
        self.rejected = 0
        self._waiting = 0
        self._semaphore: Optional[asyncio.Semaphore] = None

    @property
    def waiting(self) -> int:
        """Requests currently queued for a slot (always <= ``max_pending``)."""
        return self._waiting

    @asynccontextmanager
    async def admit(self):
        """Hold one concurrency slot; 429 instead of unbounded waiting."""
        if self._semaphore is None:
            self._semaphore = asyncio.Semaphore(self.limit)
        if self._semaphore.locked():
            if self._waiting >= self.max_pending:
                self.rejected += 1
                raise SaturatedError(
                    f"gateway saturated: {self.limit} in flight, "
                    f"{self._waiting} waiting",
                    retry_after=self.retry_after,
                )
            self._waiting += 1
            try:
                await self._semaphore.acquire()
            finally:
                self._waiting -= 1
        else:
            await self._semaphore.acquire()
        self.admitted += 1
        try:
            yield
        finally:
            self._semaphore.release()

    def stats(self) -> dict:
        """Admission counters (for ``/healthz`` and the load harness)."""
        return {
            "limit": self.limit,
            "max_pending": self.max_pending,
            "waiting": self._waiting,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }


class SessionGate:
    """Per-tenant bounded queue serialising one session's requests.

    Sessions are synchronous objects; their requests execute strictly one
    at a time on the worker pool.  Up to ``depth`` further requests may
    queue behind the running one — a tenant flooding ``StreamRequest``
    ingest beyond that receives 429s instead of growing the queue.
    """

    def __init__(self, depth: int, retry_after: float = 1.0) -> None:
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        self.depth = depth
        self.retry_after = retry_after
        self.served = 0
        self.rejected = 0
        self._waiting = 0
        self._lock: Optional[asyncio.Lock] = None

    @property
    def busy(self) -> bool:
        """Whether a request is executing or queued on this session."""
        return (self._lock is not None and self._lock.locked()) or self._waiting > 0

    @property
    def waiting(self) -> int:
        """Requests queued behind the one executing (always <= ``depth``)."""
        return self._waiting

    @asynccontextmanager
    async def admit(self):
        """Hold the session for one request; 429 when the queue is full."""
        if self._lock is None:
            self._lock = asyncio.Lock()
        if self._lock.locked():
            if self._waiting >= self.depth:
                self.rejected += 1
                raise SaturatedError(
                    f"session queue full ({self._waiting} waiting, "
                    f"depth {self.depth})",
                    retry_after=self.retry_after,
                )
            self._waiting += 1
            try:
                await self._lock.acquire()
            finally:
                self._waiting -= 1
        else:
            await self._lock.acquire()
        try:
            yield
            self.served += 1
        finally:
            self._lock.release()
