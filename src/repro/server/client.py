"""A minimal asyncio HTTP/1.1 client for the gateway's wire format.

Used by the load harness, the tests and any in-process consumer that
wants typed access to a running gateway without an HTTP library: one
keep-alive connection per client, JSON bodies in, parsed JSON bodies
out.  Works over both transports — real TCP
(:meth:`GatewayClient.open_tcp`) and the in-process memory pipe
(:meth:`GatewayClient.in_process`), which is how thousands of concurrent
tenants fit in one process without a file descriptor each.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional

from ..io.serialization import (
    error_from_dict,
    request_to_dict,
    result_from_dict,
)

__all__ = ["ClientResponse", "GatewayClient"]


class ClientResponse:
    """One parsed gateway response: status, headers, JSON payload."""

    def __init__(self, status: int, headers: dict, payload: Any) -> None:
        self.status = status
        self.headers = headers
        self.payload = payload

    @property
    def ok(self) -> bool:
        """Whether the response is a 2xx."""
        return 200 <= self.status < 300

    @property
    def retry_after(self) -> Optional[float]:
        """The ``Retry-After`` hint, when the server sent a usable one.

        RFC 7231 also allows an HTTP-date here, and a misbehaving proxy can
        send anything at all; a retry loop polling this property must never
        crash on a header it did not produce, so every non-numeric (or
        non-finite, or negative) value degrades to ``None`` — "no hint".
        """
        value = self.headers.get("retry-after")
        if value is None:
            return None
        try:
            seconds = float(value)
        except (TypeError, ValueError):
            return None
        if seconds != seconds or seconds in (float("inf"), float("-inf")):
            return None
        return seconds if seconds >= 0 else None

    def error(self):
        """The typed :class:`~repro.server.limits.GatewayError` of a
        non-2xx response (rebuilt from the structured body)."""
        return error_from_dict(self.payload)

    def result(self):
        """The typed service ``*Result`` of a 2xx submit response."""
        if not self.ok:
            raise self.error()
        return result_from_dict(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = self.payload.get("kind") if isinstance(self.payload, dict) else None
        return f"ClientResponse(status={self.status}, kind={kind!r})"


class GatewayClient:
    """One keep-alive connection to a gateway.

    Construct via :meth:`open_tcp` (a real socket) or :meth:`in_process`
    (the memory transport of a local :class:`~repro.server.Gateway`).
    Not safe for concurrent use — one client per tenant task, which is
    exactly the load-harness shape.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer, host: str = "localhost"
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._host = host

    @classmethod
    async def open_tcp(cls, host: str, port: int) -> "GatewayClient":
        """Connect over TCP."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, host=f"{host}:{port}")

    @classmethod
    def in_process(cls, gateway) -> "GatewayClient":
        """Connect over the gateway's in-process memory transport."""
        reader, writer = gateway.connect_in_process()
        return cls(reader, writer, host="in-process")

    async def request(
        self, method: str, path: str, payload: Any = None
    ) -> ClientResponse:
        """One request/response exchange (JSON body in, JSON body out)."""
        body = (
            b""
            if payload is None
            else json.dumps(payload, allow_nan=False).encode("utf-8")
        )
        lines = [
            f"{method} {path} HTTP/1.1",
            f"host: {self._host}",
            f"content-length: {len(body)}",
        ]
        self._writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> ClientResponse:
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("gateway closed the connection")
        status = int(status_line.split(None, 2)[1])
        headers: dict = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionError("truncated response headers")
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await self._reader.readexactly(length) if length else b""
        payload = json.loads(raw.decode("utf-8")) if raw else None
        return ClientResponse(status, headers, payload)

    # ------------------------------------------------------------------ #
    # Typed conveniences over the gateway routes
    # ------------------------------------------------------------------ #
    async def create_session(
        self, name: str, config: Optional[dict] = None
    ) -> ClientResponse:
        """``PUT /sessions/{name}`` (``config`` is a SessionConfig dict)."""
        return await self.request("PUT", f"/sessions/{name}", config)

    async def submit(self, name: str, request) -> ClientResponse:
        """``POST /sessions/{name}/requests`` with a typed service request
        (serialised through :func:`~repro.io.request_to_dict`) or a
        ready-made wire dict."""
        payload = (
            request if isinstance(request, dict) else request_to_dict(request)
        )
        return await self.request("POST", f"/sessions/{name}/requests", payload)

    async def session_stats(self, name: str) -> ClientResponse:
        """``GET /sessions/{name}``."""
        return await self.request("GET", f"/sessions/{name}")

    async def checkpoint(self, name: str) -> ClientResponse:
        """``POST /sessions/{name}/checkpoint`` (durable snapshot now)."""
        return await self.request("POST", f"/sessions/{name}/checkpoint")

    async def evict_session(self, name: str) -> ClientResponse:
        """``DELETE /sessions/{name}``."""
        return await self.request("DELETE", f"/sessions/{name}")

    async def health(self) -> ClientResponse:
        """``GET /healthz``."""
        return await self.request("GET", "/healthz")

    async def close(self) -> None:
        """Close the underlying connection."""
        self._writer.close()
        await self._writer.wait_closed()

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
