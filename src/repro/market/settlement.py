"""Imbalance settlement.

A BRP that deviates from its traded position pays imbalance penalties
(Scenario 2: flexibility is valuable because it lets the BRP avoid them).
The settlement model here is the standard single-price scheme: every unit of
absolute deviation between the scheduled load and the contracted position is
charged at the spot price of that hour times a penalty factor.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.errors import MarketError
from ..core.timeseries import TimeSeries
from ..scheduling import Schedule

__all__ = ["ImbalanceSettlement", "SettlementResult"]


@dataclass(frozen=True)
class SettlementResult:
    """Outcome of settling one schedule against a contracted position."""

    #: Total absolute deviation energy.
    imbalance_energy: float
    #: Total imbalance cost (currency units).
    imbalance_cost: float
    #: Per-time-unit signed deviation (load − position).
    deviation: TimeSeries

    @property
    def average_price_paid(self) -> float:
        """Average penalty paid per unit of imbalance energy (0 when balanced)."""
        if self.imbalance_energy == 0:
            return 0.0
        return self.imbalance_cost / self.imbalance_energy


@dataclass(frozen=True)
class ImbalanceSettlement:
    """Single-price imbalance settlement.

    Parameters
    ----------
    prices:
        Spot price per time unit, starting at ``price_start``.
    penalty_factor:
        Multiplier applied to the spot price for imbalance energy (> 1 means
        imbalances are more expensive than energy bought day-ahead).
    price_start:
        Absolute time of ``prices[0]``.
    """

    prices: tuple[float, ...]
    penalty_factor: float = 1.5
    price_start: int = 0

    def __post_init__(self) -> None:
        if not self.prices:
            raise MarketError("the settlement needs at least one price")
        if self.penalty_factor < 0:
            raise MarketError("penalty_factor must be non-negative")
        object.__setattr__(self, "prices", tuple(float(p) for p in self.prices))

    def price_at(self, time: int) -> float:
        """Spot price at an absolute time (clamped to the price horizon)."""
        index = time - self.price_start
        if index < 0:
            index = 0
        if index >= len(self.prices):
            index = len(self.prices) - 1
        return self.prices[index]

    def settle_load(self, load: TimeSeries, position: TimeSeries) -> SettlementResult:
        """Settle an arbitrary load series against a contracted position."""
        deviation = load - position
        energy = 0.0
        cost = 0.0
        for time, value in deviation.items():
            energy += abs(value)
            cost += abs(value) * self.price_at(time) * self.penalty_factor
        return SettlementResult(energy, cost, deviation)

    def settle(self, schedule: Schedule, position: TimeSeries) -> SettlementResult:
        """Settle a schedule's total load against a contracted position."""
        return self.settle_load(schedule.total_load(), position)

    def savings(
        self, baseline: Schedule, flexible: Schedule, position: TimeSeries
    ) -> float:
        """Imbalance-cost savings of a flexible schedule over a baseline."""
        baseline_cost = self.settle(baseline, position).imbalance_cost
        flexible_cost = self.settle(flexible, position).imbalance_cost
        return baseline_cost - flexible_cost
