"""Flex-offer trading: measure-based valuation and a simple market session.

Scenario 2 of the paper: aggregated flex-offers are traded as commodities,
and "it is preferable for aggregated flex-offers to retain as much
flexibility as possible in order to obtain a better value in the energy
market".  The pricing model here makes that explicit: a flex-offer's offer
price is its expected energy cost plus a flexibility premium proportional to
a chosen flexibility measure — so the measures of Section 3 literally price
the commodity.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional, Union

from ..aggregation import AggregatedFlexOffer
from ..core.errors import MarketError
from ..core.flexoffer import FlexOffer
from ..measures.base import FlexibilityMeasure
from ..measures.setwise import resolve_measures

__all__ = ["FlexibilityPricer", "Bid", "TradingSession"]


@dataclass(frozen=True)
class Bid:
    """A sell bid for one (aggregated) flex-offer."""

    flex_offer: FlexOffer
    energy_price: float
    flexibility_premium: float

    @property
    def total_price(self) -> float:
        """Energy cost plus flexibility premium."""
        return self.energy_price + self.flexibility_premium


@dataclass(frozen=True)
class FlexibilityPricer:
    """Prices a flex-offer from its expected energy and its flexibility.

    Parameters
    ----------
    measure:
        Measure key or instance used to compute the flexibility premium.
    energy_price:
        Price per unit of expected energy (midpoint of the total constraints).
    premium_per_unit:
        Price per unit of measured flexibility — a flex-offer that retains
        more flexibility earns a larger premium for its seller.
    """

    measure: Union[str, FlexibilityMeasure] = "vector"
    energy_price: float = 30.0
    premium_per_unit: float = 2.0

    def _measure(self) -> FlexibilityMeasure:
        """The configured measure, resolved to an instance."""
        return resolve_measures([self.measure])[0]

    def price(self, flex_offer: FlexOffer) -> Bid:
        """Build a bid for one flex-offer.

        Raises :class:`MarketError` when the chosen measure does not support
        the flex-offer's sign class (e.g. area-based measures on a mixed
        aggregate — exactly the Section 4 caveat).
        """
        return self.price_all([flex_offer])[0]

    def price_all(self, flex_offers: Sequence[FlexOffer]) -> list[Bid]:
        """Build bids for a whole book of flex-offers in one bulk pass.

        Applicability is checked first (the error for the earliest
        unsupported lot, exactly as sequential :meth:`price` calls would
        raise it), then every flexibility premium is computed in a single
        backend ``measure_values`` call — one vectorized pass under the
        NumPy / sharded backends.

        Raises
        ------
        MarketError
            When the chosen measure does not support some lot's sign class.
        """
        from ..backend.dispatch import get_backend

        flex_offers = list(flex_offers)
        measure = self._measure()
        backend = get_backend()
        try:
            supported = backend.measure_support(measure, flex_offers)
        except Exception:
            # The bulk support scan is eager; a custom ``supports`` override
            # that raises mid-book would surface ahead of an earlier lot's
            # error.  Re-run the exact sequential per-lot order instead so
            # the first offending lot (by the old price() loop's rules)
            # decides the exception.
            return self._price_sequentially(measure, flex_offers)
        first_unsupported = next(
            (index for index, ok in enumerate(supported) if not ok), None
        )
        if first_unsupported is not None:
            # An earlier supported lot whose *evaluation* raises must win,
            # exactly as the sequential per-lot loop ordered its errors —
            # evaluate the prefix (propagating any MeasureError), then
            # report the unsupported lot.
            backend.measure_values(measure, flex_offers[:first_unsupported])
            flex_offer = flex_offers[first_unsupported]
            raise MarketError(
                f"measure {measure.key!r} does not support flex-offer "
                f"{flex_offer.name!r} of kind {flex_offer.kind.value}"
            )
        flexibilities = backend.measure_values(measure, flex_offers)
        return [
            self._bid(flex_offer, flexibility)
            for flex_offer, flexibility in zip(flex_offers, flexibilities)
        ]

    def _bid(self, flex_offer: FlexOffer, flexibility: float) -> Bid:
        """Assemble one bid from an already-computed flexibility value."""
        return Bid(
            flex_offer,
            energy_price=abs(flex_offer.cmin + flex_offer.cmax)
            / 2.0
            * self.energy_price,
            flexibility_premium=flexibility * self.premium_per_unit,
        )

    def _price_sequentially(
        self, measure: FlexibilityMeasure, flex_offers: Sequence[FlexOffer]
    ) -> list[Bid]:
        """The original lot-by-lot pricing order (error-ordering fallback)."""
        bids = []
        for flex_offer in flex_offers:
            if not measure.supports(flex_offer):
                raise MarketError(
                    f"measure {measure.key!r} does not support flex-offer "
                    f"{flex_offer.name!r} of kind {flex_offer.kind.value}"
                )
            bids.append(self._bid(flex_offer, measure.value(flex_offer)))
        return bids


@dataclass
class TradingSession:
    """A single clearing round where an Aggregator sells lots to a buyer.

    Parameters
    ----------
    pricer:
        The pricing rule applied to every offered lot.
    budget:
        The buyer's budget; lots are bought greedily in order of descending
        flexibility premium per unit of price until the budget is exhausted.
    """

    pricer: FlexibilityPricer = field(default_factory=FlexibilityPricer)
    budget: float = float("inf")

    def offer_lots(
        self, lots: Sequence[Union[FlexOffer, AggregatedFlexOffer]]
    ) -> list[Bid]:
        """Price every offered lot (aggregates are unwrapped automatically).

        The whole book is priced through :meth:`FlexibilityPricer.price_all`
        — one bulk measure evaluation on the active compute backend instead
        of a per-lot loop.
        """
        return self.pricer.price_all(
            [
                lot.flex_offer if isinstance(lot, AggregatedFlexOffer) else lot
                for lot in lots
            ]
        )

    def clear(
        self, lots: Sequence[Union[FlexOffer, AggregatedFlexOffer]]
    ) -> tuple[list[Bid], list[Bid]]:
        """Clear the session: returns ``(accepted, rejected)`` bids.

        Lots with the best flexibility-per-cost ratio are accepted first
        until the budget runs out — the buyer is purchasing flexibility, so
        it prefers lots that retained more of it (the Scenario 2 argument for
        measuring flexibility).
        """
        bids = self.offer_lots(lots)
        ranked = sorted(
            bids,
            key=lambda bid: (
                bid.flexibility_premium / bid.total_price if bid.total_price else 0.0
            ),
            reverse=True,
        )
        accepted: list[Bid] = []
        rejected: list[Bid] = []
        remaining = self.budget
        for bid in ranked:
            if bid.total_price <= remaining:
                accepted.append(bid)
                remaining -= bid.total_price
            else:
                rejected.append(bid)
        return accepted, rejected
