"""Flex-offer trading: measure-based valuation and a simple market session.

Scenario 2 of the paper: aggregated flex-offers are traded as commodities,
and "it is preferable for aggregated flex-offers to retain as much
flexibility as possible in order to obtain a better value in the energy
market".  The pricing model here makes that explicit: a flex-offer's offer
price is its expected energy cost plus a flexibility premium proportional to
a chosen flexibility measure — so the measures of Section 3 literally price
the commodity.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional, Union

from ..aggregation import AggregatedFlexOffer
from ..core.errors import MarketError
from ..core.flexoffer import FlexOffer
from ..measures.base import FlexibilityMeasure
from ..measures.setwise import resolve_measures

__all__ = ["FlexibilityPricer", "Bid", "TradingSession"]


@dataclass(frozen=True)
class Bid:
    """A sell bid for one (aggregated) flex-offer."""

    flex_offer: FlexOffer
    energy_price: float
    flexibility_premium: float

    @property
    def total_price(self) -> float:
        """Energy cost plus flexibility premium."""
        return self.energy_price + self.flexibility_premium


@dataclass(frozen=True)
class FlexibilityPricer:
    """Prices a flex-offer from its expected energy and its flexibility.

    Parameters
    ----------
    measure:
        Measure key or instance used to compute the flexibility premium.
    energy_price:
        Price per unit of expected energy (midpoint of the total constraints).
    premium_per_unit:
        Price per unit of measured flexibility — a flex-offer that retains
        more flexibility earns a larger premium for its seller.
    """

    measure: Union[str, FlexibilityMeasure] = "vector"
    energy_price: float = 30.0
    premium_per_unit: float = 2.0

    def _measure(self) -> FlexibilityMeasure:
        return resolve_measures([self.measure])[0]

    def price(self, flex_offer: FlexOffer) -> Bid:
        """Build a bid for one flex-offer.

        Raises :class:`MarketError` when the chosen measure does not support
        the flex-offer's sign class (e.g. area-based measures on a mixed
        aggregate — exactly the Section 4 caveat).
        """
        measure = self._measure()
        if not measure.supports(flex_offer):
            raise MarketError(
                f"measure {measure.key!r} does not support flex-offer {flex_offer.name!r} "
                f"of kind {flex_offer.kind.value}"
            )
        expected_energy = abs(flex_offer.cmin + flex_offer.cmax) / 2.0
        flexibility = measure.value(flex_offer)
        return Bid(
            flex_offer,
            energy_price=expected_energy * self.energy_price,
            flexibility_premium=flexibility * self.premium_per_unit,
        )


@dataclass
class TradingSession:
    """A single clearing round where an Aggregator sells lots to a buyer.

    Parameters
    ----------
    pricer:
        The pricing rule applied to every offered lot.
    budget:
        The buyer's budget; lots are bought greedily in order of descending
        flexibility premium per unit of price until the budget is exhausted.
    """

    pricer: FlexibilityPricer = field(default_factory=FlexibilityPricer)
    budget: float = float("inf")

    def offer_lots(
        self, lots: Sequence[Union[FlexOffer, AggregatedFlexOffer]]
    ) -> list[Bid]:
        """Price every offered lot (aggregates are unwrapped automatically)."""
        bids = []
        for lot in lots:
            flex_offer = lot.flex_offer if isinstance(lot, AggregatedFlexOffer) else lot
            bids.append(self.pricer.price(flex_offer))
        return bids

    def clear(
        self, lots: Sequence[Union[FlexOffer, AggregatedFlexOffer]]
    ) -> tuple[list[Bid], list[Bid]]:
        """Clear the session: returns ``(accepted, rejected)`` bids.

        Lots with the best flexibility-per-cost ratio are accepted first
        until the budget runs out — the buyer is purchasing flexibility, so
        it prefers lots that retained more of it (the Scenario 2 argument for
        measuring flexibility).
        """
        bids = self.offer_lots(lots)
        ranked = sorted(
            bids,
            key=lambda bid: (
                bid.flexibility_premium / bid.total_price if bid.total_price else 0.0
            ),
            reverse=True,
        )
        accepted: list[Bid] = []
        rejected: list[Bid] = []
        remaining = self.budget
        for bid in ranked:
            if bid.total_price <= remaining:
                accepted.append(bid)
                remaining -= bid.total_price
            else:
                rejected.append(bid)
        return accepted, rejected
