"""Energy-market substrate (Scenario 2 of the paper)."""

from .actors import Aggregator, BalanceResponsibleParty, Prosumer
from .settlement import ImbalanceSettlement, SettlementResult
from .trading import Bid, FlexibilityPricer, TradingSession

__all__ = [
    "Prosumer",
    "Aggregator",
    "BalanceResponsibleParty",
    "ImbalanceSettlement",
    "SettlementResult",
    "FlexibilityPricer",
    "Bid",
    "TradingSession",
]
