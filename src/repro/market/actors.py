"""Energy-market actors: prosumers, aggregators and balance responsible parties.

Scenario 2 of the paper: individual prosumer flex-offers are too small to
trade directly, so an *Aggregator* collects them, aggregates them into larger
flex-offers and offers those in the market, where a *Balance Responsible
Party* (BRP) buys flexibility to keep its portfolio balanced and avoid
imbalance penalties.  The actor classes here are deliberately light — they
orchestrate the aggregation, measurement, scheduling and settlement modules
rather than adding new physics.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..aggregation import (
    AggregatedFlexOffer,
    GroupingParameters,
    aggregate_all,
    group_by_grid,
)
from ..core.errors import MarketError
from ..core.flexoffer import FlexOffer
from ..core.timeseries import TimeSeries
from ..measures.setwise import MeasureSpec, evaluate_set
from ..scheduling import GreedyImbalanceScheduler, ImbalanceObjective, Schedule

__all__ = ["Prosumer", "Aggregator", "BalanceResponsibleParty"]


@dataclass
class Prosumer:
    """A producer and/or consumer owning one or more flexible devices."""

    name: str
    flex_offers: list[FlexOffer] = field(default_factory=list)

    def submit(self, flex_offer: FlexOffer) -> FlexOffer:
        """Register a flex-offer with this prosumer (named after the prosumer)."""
        named = flex_offer if flex_offer.name else flex_offer.with_name(
            f"{self.name}-fo{len(self.flex_offers)}"
        )
        self.flex_offers.append(named)
        return named

    @property
    def offered_flexibility_count(self) -> int:
        """Number of flex-offers currently offered by the prosumer."""
        return len(self.flex_offers)


@dataclass
class Aggregator:
    """Collects prosumer flex-offers, aggregates them and values the result.

    Parameters
    ----------
    name:
        Aggregator identifier.
    grouping:
        Grouping tolerances used before start-alignment aggregation.
    """

    name: str = "aggregator"
    grouping: GroupingParameters = field(default_factory=GroupingParameters)
    collected: list[FlexOffer] = field(default_factory=list)

    def collect(self, flex_offers: Iterable[FlexOffer]) -> int:
        """Add prosumer flex-offers to the Aggregator's portfolio."""
        before = len(self.collected)
        self.collected.extend(flex_offers)
        return len(self.collected) - before

    def aggregate(self) -> list[AggregatedFlexOffer]:
        """Group and aggregate the collected flex-offers.

        Raises :class:`MarketError` when nothing has been collected yet.
        """
        if not self.collected:
            raise MarketError(f"aggregator {self.name!r} has no flex-offers to aggregate")
        groups = group_by_grid(self.collected, self.grouping)
        return aggregate_all(groups, prefix=f"{self.name}-lot")

    def portfolio_flexibility(
        self, measures: Optional[Iterable[MeasureSpec]] = None
    ) -> dict[str, float]:
        """Flexibility of the collected portfolio under the chosen measures."""
        return evaluate_set(self.collected, measures).values


@dataclass
class BalanceResponsibleParty:
    """A BRP scheduling purchased flexibility against its forecast position.

    Parameters
    ----------
    name:
        BRP identifier.
    forecast_supply:
        The BRP's contracted / forecast supply profile; scheduled flexible
        demand should follow it to minimise imbalance.
    """

    name: str
    forecast_supply: TimeSeries

    def schedule_flexibility(
        self, flex_offers: Sequence[FlexOffer]
    ) -> Schedule:
        """Schedule purchased flex-offers to track the forecast supply."""
        scheduler = GreedyImbalanceScheduler(
            ImbalanceObjective("absolute", self.forecast_supply)
        )
        return scheduler.schedule(flex_offers, self.forecast_supply)

    def imbalance_energy(self, schedule: Schedule) -> float:
        """Remaining absolute imbalance energy after using the flexibility."""
        objective = ImbalanceObjective("absolute", self.forecast_supply)
        return objective.of_schedule(schedule)
