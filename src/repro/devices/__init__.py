"""Device models that emit flex-offers (EVs, heat pumps, appliances, generation)."""

from .base import DeviceModel
from .battery import VehicleToGrid
from .electric_vehicle import ElectricVehicle
from .generation import SolarPanel, WindTurbine
from .heat_pump import HeatPump
from .refrigerator import Refrigerator
from .wet_appliances import Dishwasher, WashingMachine

__all__ = [
    "DeviceModel",
    "ElectricVehicle",
    "HeatPump",
    "Dishwasher",
    "WashingMachine",
    "Refrigerator",
    "SolarPanel",
    "WindTurbine",
    "VehicleToGrid",
]
