"""Smart refrigerator device model.

A smart refrigerator can pre-cool: every time unit it may draw anywhere
between a standby level and its compressor maximum, as long as enough energy
is consumed over the horizon to keep the temperature in band.  The result is
a flex-offer with little or no time flexibility (cooling cannot be postponed
for long) but per-slice amount flexibility — the complementary shape to the
wet appliances, useful for exercising measures that favour one dimension.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.errors import WorkloadError
from ..core.flexoffer import FlexOffer
from .base import DeviceModel, uniform_int

__all__ = ["Refrigerator"]


@dataclass
class Refrigerator(DeviceModel):
    """A smart refrigerator producing amount-flexible consumption flex-offers.

    Attributes
    ----------
    standby_power, compressor_power:
        Per-slice energy range.
    horizon:
        Number of slices of the cooling window.
    required_fraction:
        Fraction of the maximum window energy that must be delivered to keep
        the temperature band.
    start_earliest, start_latest:
        Range of window start times when none is supplied.
    start_slack:
        Maximum postponement of the window (usually 0 or 1).
    """

    name: str = "refrigerator"
    standby_power: int = 0
    compressor_power: int = 2
    horizon: int = 6
    required_fraction: float = 0.5
    start_earliest: int = 0
    start_latest: int = 18
    start_slack: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.standby_power <= self.compressor_power:
            raise WorkloadError("power levels must satisfy 0 <= standby <= compressor")
        if self.horizon < 1:
            raise WorkloadError("horizon must be >= 1")
        if not 0 < self.required_fraction <= 1:
            raise WorkloadError("required_fraction must lie in (0, 1]")
        if self.start_slack < 0:
            raise WorkloadError("start_slack must be >= 0")

    def generate(self, rng: random.Random, plug_in_time: Optional[int] = None) -> FlexOffer:
        earliest = (
            plug_in_time
            if plug_in_time is not None
            else uniform_int(rng, self.start_earliest, self.start_latest)
        )
        latest = earliest + uniform_int(rng, 0, self.start_slack)
        maximum_energy = self.horizon * self.compressor_power
        minimum_energy = max(
            self.horizon * self.standby_power,
            int(round(maximum_energy * self.required_fraction)),
        )
        return FlexOffer(
            earliest,
            latest,
            [(self.standby_power, self.compressor_power)] * self.horizon,
            minimum_energy,
            maximum_energy,
            name=self._next_name(),
        )
