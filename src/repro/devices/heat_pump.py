"""Heat-pump device model.

Heat pumps are the paper's example of new devices that increase energy demand
and risk consumption peaks.  A heat pump must keep the building inside a
comfort band, so every operating block needs a minimum amount of energy but
can modulate between a low and a high power level in every time unit and can
shift its operating block by a small amount.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.errors import WorkloadError
from ..core.flexoffer import FlexOffer
from .base import DeviceModel, uniform_int

__all__ = ["HeatPump"]


@dataclass
class HeatPump(DeviceModel):
    """A modulating heat pump producing consumption flex-offers.

    Attributes
    ----------
    low_power, high_power:
        Modulation range of every slice (energy units per time unit).
    min_duration, max_duration:
        Length of an operating block in time units.
    comfort_fraction:
        Fraction of the maximum block energy that must be delivered to keep
        the comfort band (sets the total minimum constraint).
    start_earliest, start_latest:
        Range of block start times when none is supplied.
    shift_slack:
        Maximum number of time units the block may be postponed.
    """

    name: str = "heat-pump"
    low_power: int = 1
    high_power: int = 3
    min_duration: int = 3
    max_duration: int = 6
    comfort_fraction: float = 0.7
    start_earliest: int = 0
    start_latest: int = 20
    shift_slack: int = 2

    def __post_init__(self) -> None:
        if not 0 <= self.low_power <= self.high_power:
            raise WorkloadError("power levels must satisfy 0 <= low <= high")
        if self.min_duration < 1 or self.max_duration < self.min_duration:
            raise WorkloadError("invalid operating-block duration range")
        if not 0 < self.comfort_fraction <= 1:
            raise WorkloadError("comfort_fraction must lie in (0, 1]")
        if self.shift_slack < 0:
            raise WorkloadError("shift_slack must be >= 0")

    def generate(self, rng: random.Random, plug_in_time: Optional[int] = None) -> FlexOffer:
        duration = uniform_int(rng, self.min_duration, self.max_duration)
        earliest = (
            plug_in_time
            if plug_in_time is not None
            else uniform_int(rng, self.start_earliest, self.start_latest)
        )
        latest = earliest + uniform_int(rng, 0, self.shift_slack)
        block_maximum = duration * self.high_power
        block_minimum = max(
            duration * self.low_power,
            int(round(block_maximum * self.comfort_fraction)),
        )
        return FlexOffer(
            earliest,
            latest,
            [(self.low_power, self.high_power)] * duration,
            block_minimum,
            block_maximum,
            name=self._next_name(),
        )
