"""Production devices: solar panels and wind turbines.

Production is represented by *negative* flex-offers (Section 2 of the
paper).  A photovoltaic installation or a wind turbine cannot choose when the
sun shines or the wind blows, so its time flexibility is (near) zero, but it
can curtail: each slice ranges from "produce everything available" (the most
negative value) up to "curtail completely" (zero) or a contracted minimum
feed-in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.errors import WorkloadError
from ..core.flexoffer import FlexOffer
from .base import DeviceModel, uniform_int

__all__ = ["SolarPanel", "WindTurbine"]


@dataclass
class SolarPanel(DeviceModel):
    """A rooftop PV installation producing negative (production) flex-offers.

    Attributes
    ----------
    peak_production:
        Largest per-slice production magnitude (energy units; stored as the
        negative bound of the slice).
    hours:
        Number of production slices (the daylight window).
    curtailable:
        When ``True`` every slice may be curtailed down to zero; when
        ``False`` at least half the available production must be fed in.
    day_start_earliest, day_start_latest:
        Range of window start times when none is supplied.
    """

    name: str = "solar"
    peak_production: int = 3
    hours: int = 6
    curtailable: bool = True
    day_start_earliest: int = 8
    day_start_latest: int = 10

    def __post_init__(self) -> None:
        if self.peak_production < 1:
            raise WorkloadError("peak_production must be >= 1")
        if self.hours < 1:
            raise WorkloadError("hours must be >= 1")

    def _profile_shape(self, rng: random.Random) -> list[int]:
        """A rough bell-shaped daily production profile."""
        half = (self.hours + 1) // 2
        ramp = [
            max(1, round(self.peak_production * (index + 1) / half))
            for index in range(half)
        ]
        shape = ramp + ramp[::-1][self.hours % 2:]
        return shape[: self.hours]

    def generate(self, rng: random.Random, plug_in_time: Optional[int] = None) -> FlexOffer:
        start = (
            plug_in_time
            if plug_in_time is not None
            else uniform_int(rng, self.day_start_earliest, self.day_start_latest)
        )
        slices = []
        for available in self._profile_shape(rng):
            upper = 0 if self.curtailable else -max(1, available // 2)
            slices.append((-available, upper))
        return FlexOffer(start, start, slices, name=self._next_name())


@dataclass
class WindTurbine(DeviceModel):
    """A wind turbine producing negative flex-offers with gusty profiles.

    Attributes
    ----------
    rated_power:
        Largest per-slice production magnitude.
    hours:
        Number of production slices.
    curtailable:
        Whether production may be curtailed to zero per slice.
    start_earliest, start_latest:
        Range of window start times when none is supplied.
    """

    name: str = "wind"
    rated_power: int = 5
    hours: int = 8
    curtailable: bool = True
    start_earliest: int = 0
    start_latest: int = 4

    def __post_init__(self) -> None:
        if self.rated_power < 1:
            raise WorkloadError("rated_power must be >= 1")
        if self.hours < 1:
            raise WorkloadError("hours must be >= 1")

    def generate(self, rng: random.Random, plug_in_time: Optional[int] = None) -> FlexOffer:
        start = (
            plug_in_time
            if plug_in_time is not None
            else uniform_int(rng, self.start_earliest, self.start_latest)
        )
        slices = []
        for _ in range(self.hours):
            available = uniform_int(rng, 1, self.rated_power)
            upper = 0 if self.curtailable else -max(1, available // 2)
            slices.append((-available, upper))
        return FlexOffer(start, start, slices, name=self._next_name())
