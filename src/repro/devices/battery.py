"""Battery / vehicle-to-grid device model — the paper's *mixed* flex-offer.

A stationary battery or a vehicle-to-grid-capable EV can both draw energy
from the grid (positive values) and feed energy back (negative values) in
every time unit, which makes its flex-offer *mixed* (Section 2).  Mixed
flex-offers are the reason the paper excludes the area-based measures from
the balancing scenario (Section 4); this device model exists so tests,
examples and benchmarks can exercise that code path with realistic inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.errors import WorkloadError
from ..core.flexoffer import FlexOffer
from .base import DeviceModel, uniform_int

__all__ = ["VehicleToGrid"]


@dataclass
class VehicleToGrid(DeviceModel):
    """A battery that can charge and discharge, producing mixed flex-offers.

    Attributes
    ----------
    charge_power, discharge_power:
        Per-slice bounds: the slice range is ``[-discharge_power, charge_power]``.
    min_duration, max_duration:
        Length of the availability window in slices.
    net_energy_min, net_energy_max:
        Bounds on the *net* energy over the window (negative values allow the
        battery to end up emptier than it started).  They are clipped to the
        profile bounds at generation time.
    available_earliest, available_latest:
        Range of window start times when none is supplied.
    shift_slack:
        Maximum postponement of the window.
    """

    name: str = "v2g"
    charge_power: int = 3
    discharge_power: int = 3
    min_duration: int = 2
    max_duration: int = 5
    net_energy_min: int = -4
    net_energy_max: int = 6
    available_earliest: int = 18
    available_latest: int = 23
    shift_slack: int = 3

    def __post_init__(self) -> None:
        if self.charge_power < 0 or self.discharge_power < 0:
            raise WorkloadError("power limits must be non-negative")
        if self.charge_power == 0 and self.discharge_power == 0:
            raise WorkloadError("at least one of charge/discharge power must be positive")
        if self.min_duration < 1 or self.max_duration < self.min_duration:
            raise WorkloadError("invalid availability-window duration range")
        if self.net_energy_min > self.net_energy_max:
            raise WorkloadError("net_energy_min must not exceed net_energy_max")
        if self.shift_slack < 0:
            raise WorkloadError("shift_slack must be >= 0")

    def generate(self, rng: random.Random, plug_in_time: Optional[int] = None) -> FlexOffer:
        duration = uniform_int(rng, self.min_duration, self.max_duration)
        earliest = (
            plug_in_time
            if plug_in_time is not None
            else uniform_int(rng, self.available_earliest, self.available_latest)
        )
        latest = earliest + uniform_int(rng, 0, self.shift_slack)
        profile_minimum = -self.discharge_power * duration
        profile_maximum = self.charge_power * duration
        total_min = max(self.net_energy_min, profile_minimum)
        total_max = min(self.net_energy_max, profile_maximum)
        if total_min > total_max:
            total_min, total_max = profile_minimum, profile_maximum
        return FlexOffer(
            earliest,
            latest,
            [(-self.discharge_power, self.charge_power)] * duration,
            total_min,
            total_max,
            name=self._next_name(),
        )
