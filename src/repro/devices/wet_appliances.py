"""Wet appliances: dishwashers and washing machines.

Wet appliances run a fixed programme once loaded — their per-slice energy
profile is essentially inflexible (heating, washing, rinsing phases draw what
they draw) but the *start* of the programme can typically be deferred for
several hours, which makes them the textbook example of pure time
flexibility (``ef ≈ 0``, ``tf`` large).  Section 4 of the paper uses exactly
this shape to show where the product flexibility measure fails.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.errors import WorkloadError
from ..core.flexoffer import FlexOffer
from .base import DeviceModel, uniform_int

__all__ = ["Dishwasher", "WashingMachine"]


@dataclass
class Dishwasher(DeviceModel):
    """A dishwasher: fixed programme profile, deferrable start.

    Attributes
    ----------
    programme:
        Per-slice energy draw of the washing programme.
    jitter:
        Half-width of the per-slice tolerance; ``0`` makes the profile fully
        inflexible (the default and the common case).
    load_earliest, load_latest:
        Range of load (ready-to-start) times when none is supplied.
    deferral:
        Maximum number of time units the start may be deferred.
    """

    name: str = "dishwasher"
    programme: tuple[int, ...] = (2, 3, 1)
    jitter: int = 0
    load_earliest: int = 17
    load_latest: int = 22
    deferral: int = 6

    def __post_init__(self) -> None:
        if not self.programme:
            raise WorkloadError("the programme needs at least one slice")
        if any(draw < 0 for draw in self.programme):
            raise WorkloadError("programme draws must be non-negative")
        if self.jitter < 0:
            raise WorkloadError("jitter must be >= 0")
        if self.deferral < 0:
            raise WorkloadError("deferral must be >= 0")

    def generate(self, rng: random.Random, plug_in_time: Optional[int] = None) -> FlexOffer:
        earliest = (
            plug_in_time
            if plug_in_time is not None
            else uniform_int(rng, self.load_earliest, self.load_latest)
        )
        latest = earliest + uniform_int(rng, 0, self.deferral)
        slices = [
            (max(0, draw - self.jitter), draw + self.jitter) for draw in self.programme
        ]
        return FlexOffer(earliest, latest, slices, name=self._next_name())


@dataclass
class WashingMachine(Dishwasher):
    """A washing machine — same shape as the dishwasher, heavier programme."""

    name: str = "washing-machine"
    programme: tuple[int, ...] = (3, 2, 2, 1)
    load_earliest: int = 7
    load_latest: int = 20
    deferral: int = 8
