"""Device models: prosumer units that emit flex-offers.

The paper's introduction motivates flex-offers with household appliances and
distributed generation — electric vehicles, heat pumps, dishwashers, smart
refrigerators, solar panels, wind turbines, vehicle-to-grid batteries.  Each
device model in this subpackage knows how to turn its physical parameters
(charge duration, energy need, owner deadlines, weather sensitivity, ...)
into a :class:`~repro.core.flexoffer.FlexOffer`.

All stochastic parameters are drawn from an explicit :class:`random.Random`
generator supplied by the caller, so populations are reproducible — the
workload generators and benchmarks rely on that.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Optional

from ..core.errors import WorkloadError
from ..core.flexoffer import FlexOffer

__all__ = ["DeviceModel", "uniform_int", "clamp"]


def uniform_int(rng: random.Random, low: int, high: int) -> int:
    """A uniform integer in ``[low, high]`` with argument validation."""
    if low > high:
        raise WorkloadError(f"empty integer range [{low}, {high}]")
    return rng.randint(low, high)


def clamp(value: int, low: int, high: int) -> int:
    """Clamp ``value`` into ``[low, high]``."""
    return max(low, min(high, value))


@dataclass
class DeviceModel(abc.ABC):
    """Base class of every device model.

    Attributes
    ----------
    name:
        Identifier prefix of the flex-offers the device emits (each generated
        flex-offer gets a unique suffix).
    """

    name: str = "device"
    _counter: int = 0

    @abc.abstractmethod
    def generate(self, rng: random.Random, plug_in_time: Optional[int] = None) -> FlexOffer:
        """Generate one flex-offer for this device.

        Parameters
        ----------
        rng:
            Source of randomness; the caller controls the seed.
        plug_in_time:
            The absolute time unit at which the device becomes available
            (e.g. the EV is plugged in, the dishwasher is loaded).  When
            ``None`` the device model draws a typical time itself.
        """

    def _next_name(self) -> str:
        self._counter += 1
        return f"{self.name}-{self._counter}"

    def generate_many(
        self, count: int, rng: random.Random, plug_in_time: Optional[int] = None
    ) -> list[FlexOffer]:
        """Generate ``count`` independent flex-offers from this device model."""
        if count < 0:
            raise WorkloadError(f"count must be non-negative, got {count}")
        return [self.generate(rng, plug_in_time) for _ in range(count)]
