"""Electric-vehicle charger device model (the paper's Section 1 use case).

The use case: an EV is plugged in at 23:00 with an empty battery, needs
3 hours of charging, the owner is satisfied with any state of charge between
60 % and 100 %, and the car must be ready by 6:00 — so charging can start
anywhere between 23:00 and 3:00.  The model generalises those numbers with
stochastic plug-in times, charge durations, per-hour charger power and
owner-acceptable minimum charge levels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.errors import WorkloadError
from ..core.flexoffer import FlexOffer
from .base import DeviceModel, uniform_int

__all__ = ["ElectricVehicle"]


@dataclass
class ElectricVehicle(DeviceModel):
    """An EV charger producing consumption flex-offers.

    Attributes
    ----------
    charger_power:
        Maximum energy units one slice (one time unit) can deliver.
    min_duration, max_duration:
        Range of charge durations (number of slices).
    min_acceptable_fraction:
        Lowest state of charge (as a fraction of a full charge) the owner
        accepts — the paper's use case uses 0.6.
    plug_in_earliest, plug_in_latest:
        Range of plug-in times used when no explicit plug-in time is given.
    deadline_slack:
        How many time units after ``plug-in + duration`` the charge must be
        finished at the latest; this determines the time flexibility.
    """

    name: str = "ev"
    charger_power: int = 4
    min_duration: int = 2
    max_duration: int = 4
    min_acceptable_fraction: float = 0.6
    plug_in_earliest: int = 20
    plug_in_latest: int = 24
    deadline_slack: int = 4

    def __post_init__(self) -> None:
        if self.charger_power < 1:
            raise WorkloadError("charger_power must be >= 1")
        if not 0 < self.min_acceptable_fraction <= 1:
            raise WorkloadError("min_acceptable_fraction must lie in (0, 1]")
        if self.min_duration < 1 or self.max_duration < self.min_duration:
            raise WorkloadError("invalid charge-duration range")
        if self.deadline_slack < 0:
            raise WorkloadError("deadline_slack must be >= 0")

    def generate(self, rng: random.Random, plug_in_time: Optional[int] = None) -> FlexOffer:
        duration = uniform_int(rng, self.min_duration, self.max_duration)
        earliest = (
            plug_in_time
            if plug_in_time is not None
            else uniform_int(rng, self.plug_in_earliest, self.plug_in_latest)
        )
        latest = earliest + uniform_int(rng, 0, self.deadline_slack)
        full_charge = duration * self.charger_power
        minimum_charge = max(1, int(round(full_charge * self.min_acceptable_fraction)))
        return FlexOffer(
            earliest,
            latest,
            [(0, self.charger_power)] * duration,
            minimum_charge,
            full_charge,
            name=self._next_name(),
        )
