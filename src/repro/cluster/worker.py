"""The long-lived TCP shard worker: ``python -m repro.cluster.worker``.

A worker binds one listening socket, prints ``LISTENING host:port`` (the
harness/operator contract — port 0 resolves to an ephemeral port), and
serves each accepted connection on its own thread.  A connection speaks
the frame protocol from :mod:`repro.cluster.framing` and supports:

``hello``
    Handshake: verifies the protocol version, returns ``welcome`` with
    the worker's pid.  Optional but recommended — the executor sends it
    on connect so version skew fails loudly at dial time.
``ping`` → ``pong``
    Health probe; used by probe-gated host recovery.
``task``
    Execute a by-name shard worker function.  The frame carries
    ``fn`` (``"module:attribute"``, module restricted to the ``repro``
    package), ``args``, an optional ``ship`` dict of interned shard
    chunks, and an ``id`` echoed in the result.  Arguments may contain
    :class:`~repro.cluster.framing.ShardRef` placeholders; they resolve
    against the per-connection cache populated by earlier ``ship``
    entries.  Unknown refs don't fail the task — the worker answers with
    the missing keys and the executor re-ships.
``shutdown``
    Acknowledge and stop the whole worker (used by orderly teardown).

Application exceptions raised by the shard function travel back pickled
and are re-raised executor-side, preserving the backend's error-parity
contract; everything protocol-shaped raises typed error frames instead.

The per-connection cache makes interning *correct by construction*: a
connection is owned by exactly one executor, and the executor tracks
which keys it has shipped on it, so there is no cross-tenant cache
coherence to reason about.  Worker functions still share the process-wide
:class:`~repro.backend.cache.MatrixCache`, so repeated tasks over the
same offers also reuse packed matrices, exactly like the process pool.
"""

from __future__ import annotations

import argparse
import importlib
import os
import pickle
import socket
import sys
import threading
import traceback
from typing import Dict, Optional, Sequence

from .framing import (
    PROTOCOL_VERSION,
    ShardRef,
    WireError,
    recv_frame,
    send_frame,
)

__all__ = ["WorkerServer", "main", "resolve_function"]


def resolve_function(name: str):
    """Import a shard worker function from its ``module:attribute`` name.

    Only ``repro``-package modules are importable — the wire must not be
    a generic remote-code-execution endpoint.
    """
    module_name, separator, attribute = name.partition(":")
    if not separator or not attribute:
        raise ValueError(f"function name {name!r} is not 'module:attribute'")
    if module_name != "repro" and not module_name.startswith("repro."):
        raise ValueError(f"refusing to import non-repro module {module_name!r}")
    function = getattr(importlib.import_module(module_name), attribute, None)
    if not callable(function):
        raise ValueError(f"{name!r} does not resolve to a callable")
    return function


def _substitute(value, cache: Dict[str, Sequence], missing: set):
    """Resolve :class:`ShardRef` placeholders inside one task argument."""
    if isinstance(value, ShardRef):
        if value.key not in cache:
            missing.add(value.key)
            return None
        return cache[value.key]
    return value


class _Connection(threading.Thread):
    """One client connection: its frame loop, ref cache and counters."""

    def __init__(self, server: "WorkerServer", sock: socket.socket) -> None:
        super().__init__(daemon=True, name="cluster-worker-conn")
        self.server = server
        self.sock = sock
        self.cache: Dict[str, Sequence] = {}

    def run(self) -> None:
        try:
            while True:
                try:
                    message = recv_frame(self.sock)
                except WireError:
                    break
                if message is None:
                    break
                if not self._handle(message):
                    break
        except OSError:
            pass
        finally:
            try:
                self.sock.close()
            except OSError:
                pass

    def _handle(self, message: dict) -> bool:
        """Dispatch one frame; returns False to end the connection."""
        operation = message.get("op")
        if operation == "hello":
            version = message.get("version")
            compatible = version == PROTOCOL_VERSION
            send_frame(
                self.sock,
                {
                    "op": "welcome" if compatible else "error",
                    "version": PROTOCOL_VERSION,
                    "pid": self.server.pid,
                    **(
                        {}
                        if compatible
                        else {"reason": f"protocol version {version!r} unsupported"}
                    ),
                },
            )
            return compatible
        if operation == "ping":
            send_frame(self.sock, {"op": "pong"})
            return True
        if operation == "task":
            self._run_task(message)
            return True
        if operation == "stats":
            with self.server._lock:
                send_frame(
                    self.sock,
                    {
                        "op": "stats",
                        "tasks": self.server.tasks,
                        "shipped_keys": self.server.shipped_keys,
                        "ref_hits": self.server.ref_hits,
                        "cached_keys": len(self.cache),
                    },
                )
            return True
        if operation == "shutdown":
            send_frame(self.sock, {"op": "bye"})
            self.server.stop()
            return False
        send_frame(
            self.sock,
            {"op": "error", "reason": f"unknown operation {operation!r}"},
        )
        return False

    def _run_task(self, message: dict) -> None:
        task_id = message.get("id")
        shipped = message.get("ship") or {}
        for key, chunk in shipped.items():
            self.cache[key] = chunk
        with self.server._lock:
            self.server.shipped_keys += len(shipped)
        missing: set = set()
        arguments = [
            _substitute(value, self.cache, missing)
            for value in message.get("args", [])
        ]
        if missing:
            # Not an error: the executor's view of this connection's cache
            # was stale (fresh connection, evicted worker).  Ask for bytes.
            send_frame(
                self.sock,
                {"op": "result", "id": task_id, "ok": False,
                 "missing": sorted(missing)},
                pickled=True,
            )
            return
        with self.server._lock:
            self.server.tasks += 1
            self.server.ref_hits += sum(
                1
                for value in message.get("args", [])
                if isinstance(value, ShardRef) and value.key not in shipped
            )
        try:
            function = resolve_function(message.get("fn", ""))
            value = function(*arguments)
            reply = {"op": "result", "id": task_id, "ok": True, "value": value}
        except BaseException as error:  # noqa: BLE001 - transported to client
            reply = {
                "op": "result",
                "id": task_id,
                "ok": False,
                "error": error,
                "traceback": traceback.format_exc(),
            }
        # Serialise BEFORE framing: an unpicklable result must degrade to
        # a typed error frame, never to a torn stream.
        try:
            pickle.dumps(reply, pickle.HIGHEST_PROTOCOL)
        except Exception as error:  # pragma: no cover - exotic payloads
            reply = {
                "op": "result",
                "id": task_id,
                "ok": False,
                "error": ValueError(
                    f"worker result is not picklable: {error}"
                ),
                "traceback": traceback.format_exc(),
            }
        send_frame(self.sock, reply, pickled=True)


class WorkerServer:
    """The accept loop plus process-wide counters."""

    def __init__(self, bind: str = "127.0.0.1:0") -> None:
        # Register every backend the host supports before accepting work:
        # shard functions resolve inner backends by name, and doing it here
        # (single-threaded) keeps the first concurrent tasks off the slow
        # NumPy-import path.
        importlib.import_module("repro.backend").available_backends()
        host, _, port = bind.rpartition(":")
        if not host or not port:
            raise ValueError(f"bind address {bind!r} is not 'host:port'")
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, int(port)))
        self._listener.listen(64)
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self.tasks = 0
        self.shipped_keys = 0
        self.ref_hits = 0
        self.pid = os.getpid()

    @property
    def address(self) -> str:
        """The bound ``host:port`` (ephemeral port resolved)."""
        host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    def stop(self) -> None:
        """Ask the accept loop to exit; idempotent.

        ``shutdown`` before ``close``: closing a listener another thread
        is blocked in ``accept`` on does not reliably wake it, while
        shutting the socket down does.
        """
        if not self._stopping.is_set():
            self._stopping.set()
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:  # pragma: no cover - platform-dependent
                pass
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close race
                pass

    def serve_forever(self, announce: bool = True) -> None:
        """Accept connections until :meth:`stop`; optionally print the banner."""
        if announce:
            print(f"LISTENING {self.address}", flush=True)
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                break
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            _Connection(self, sock).start()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.cluster.worker --bind host:port``."""
    parser = argparse.ArgumentParser(
        prog="repro.cluster.worker",
        description="Long-lived TCP shard worker for the repro cluster.",
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="host:port to listen on (port 0 picks an ephemeral port)",
    )
    options = parser.parse_args(argv)
    try:
        server = WorkerServer(bind=options.bind)
    except (OSError, ValueError) as error:
        print(f"ERROR {error}", flush=True)
        return 2
    server.serve_forever()
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
