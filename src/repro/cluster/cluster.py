"""Cluster topology: the spec that names hosts, and a loopback harness.

:class:`ClusterSpec` is the configuration object for distributed shard
execution — an ordered host list plus connection-management knobs.  It
follows the same conventions every other config object in the library
does: frozen, JSON :meth:`spec` round-trip (like
:meth:`repro.faults.FaultPlan.spec`), an environment entry point
(``REPRO_CLUSTER``) that degrades with a warning on malformed values
while explicit constructor arguments fail fast.

:class:`LocalCluster` is the test/bench harness: it spawns real
``python -m repro.cluster.worker`` subprocesses bound to ephemeral
loopback ports, so everything above it — framing, interning, health
states, redispatch — is exercised over genuine sockets and process
boundaries, not mocks.

>>> spec = ClusterSpec.from_spec("127.0.0.1:7001,127.0.0.1:7002")
>>> spec.hosts
('127.0.0.1:7001', '127.0.0.1:7002')
>>> ClusterSpec.from_spec(spec.spec()) == spec
True
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..core.errors import FlexError

__all__ = ["ClusterError", "ClusterSpec", "ENV_CLUSTER", "LocalCluster"]

#: Environment variable holding a :meth:`ClusterSpec.spec` document (or the
#: ``host:port,host:port`` shorthand).
ENV_CLUSTER = "REPRO_CLUSTER"


class ClusterError(FlexError):
    """Invalid cluster configuration or a harness-level failure."""


def _check_host(host: str) -> str:
    """Validate one ``host:port`` entry and normalise whitespace."""
    entry = host.strip()
    address, colon, port = entry.rpartition(":")
    if not colon or not address:
        raise ClusterError(
            f"cluster host {host!r} is not of the form 'host:port'"
        )
    try:
        port_number = int(port)
    except ValueError:
        port_number = -1
    if not 0 < port_number < 65536:
        raise ClusterError(f"cluster host {host!r} has invalid port {port!r}")
    return entry


@dataclass(frozen=True)
class ClusterSpec:
    """Where the workers are, and how eagerly to talk to them.

    Parameters
    ----------
    hosts:
        Ordered ``host:port`` worker addresses.  Order matters only as the
        round-robin starting arrangement; placement is least-outstanding.
    connections_per_host:
        Pooled-connection cap per host.  Shard-matrix interning is
        per-connection, so fewer connections mean warmer caches while more
        connections mean more in-flight shards per host.
    connect_timeout_s:
        TCP connect deadline before a host is declared unreachable.
    probe_interval_s:
        How long a ``down`` host rests before one probe connection may
        test it again (the persistence breaker's probe-gating, applied to
        hosts).
    """

    hosts: Tuple[str, ...]
    connections_per_host: int = 2
    connect_timeout_s: float = 5.0
    probe_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if isinstance(self.hosts, str):
            raise ClusterError(
                "hosts must be a sequence of 'host:port' strings; "
                "use ClusterSpec.from_spec() for the comma shorthand"
            )
        checked = tuple(_check_host(host) for host in self.hosts)
        if not checked:
            raise ClusterError("a cluster needs at least one host")
        object.__setattr__(self, "hosts", checked)
        if self.connections_per_host < 1:
            raise ClusterError(
                f"connections_per_host must be >= 1, "
                f"got {self.connections_per_host}"
            )
        if self.connect_timeout_s <= 0:
            raise ClusterError(
                f"connect_timeout_s must be > 0, got {self.connect_timeout_s}"
            )
        if self.probe_interval_s < 0:
            raise ClusterError(
                f"probe_interval_s must be >= 0, got {self.probe_interval_s}"
            )

    def spec(self) -> dict:
        """A JSON-ready description (round-trips via :meth:`from_spec`)."""
        payload: dict = {"hosts": list(self.hosts)}
        if self.connections_per_host != 2:
            payload["connections_per_host"] = self.connections_per_host
        if self.connect_timeout_s != 5.0:
            payload["connect_timeout_s"] = self.connect_timeout_s
        if self.probe_interval_s != 1.0:
            payload["probe_interval_s"] = self.probe_interval_s
        return payload

    @classmethod
    def from_spec(
        cls, payload: Union[str, dict, list, "ClusterSpec"]
    ) -> "ClusterSpec":
        """Rebuild a spec from :meth:`spec` output or shorthand.

        Accepts a spec dict, a bare host list, a JSON string of either,
        or the ``"host:port,host:port"`` comma shorthand.
        """
        if isinstance(payload, ClusterSpec):
            return payload
        if isinstance(payload, str):
            text = payload.strip()
            if not text:
                raise ClusterError("empty cluster spec")
            if text[0] in "[{":
                try:
                    payload = json.loads(text)
                except ValueError as error:
                    raise ClusterError(
                        f"malformed cluster-spec JSON: {error}"
                    ) from error
            else:
                payload = [host for host in text.split(",") if host.strip()]
        if isinstance(payload, (list, tuple)):
            payload = {"hosts": list(payload)}
        if not isinstance(payload, dict):
            raise ClusterError(f"not a cluster spec: {payload!r}")
        known = {
            "hosts",
            "connections_per_host",
            "connect_timeout_s",
            "probe_interval_s",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ClusterError(f"unknown cluster-spec fields: {unknown}")
        if "hosts" not in payload:
            raise ClusterError("cluster spec is missing 'hosts'")
        return cls(
            hosts=tuple(payload["hosts"]),
            connections_per_host=int(payload.get("connections_per_host", 2)),
            connect_timeout_s=float(payload.get("connect_timeout_s", 5.0)),
            probe_interval_s=float(payload.get("probe_interval_s", 1.0)),
        )

    @classmethod
    def from_env(cls, variable: str = ENV_CLUSTER) -> Optional["ClusterSpec"]:
        """The spec described by the environment, or ``None`` when unset.

        Malformed values are ignored with a warning, like every other
        ``REPRO_*`` knob read at construction time.
        """
        raw = os.environ.get(variable)
        if raw is None or not raw.strip():
            return None
        try:
            return cls.from_spec(raw)
        except ClusterError:
            from ..backend.dispatch import _warn_ignored_env

            _warn_ignored_env(
                variable, raw, "a JSON cluster spec or 'host:port,...' list"
            )
            return None


def _drain(stream, sink: List[str]) -> None:
    """Mirror a worker's output into a list (and keep the pipe from filling)."""
    for line in iter(stream.readline, ""):
        sink.append(line.rstrip("\n"))
    stream.close()


@dataclass
class LocalCluster:
    """Loopback worker subprocesses for tests and benchmarks.

    Spawns ``workers`` copies of ``python -m repro.cluster.worker`` bound
    to ephemeral ``127.0.0.1`` ports, reads each worker's ``LISTENING``
    banner to learn the port, and exposes the resulting addresses through
    :meth:`spec`.  Context-managed::

        with LocalCluster(workers=4) as cluster:
            backend = ShardedBackend(executor="remote", cluster=cluster.spec())

    ``kill(index)`` hard-kills one worker — the chaos suite's way of
    taking a host down mid-request.
    """

    workers: int = 2
    start_timeout_s: float = 20.0
    _processes: List[subprocess.Popen] = field(default_factory=list, repr=False)
    _addresses: List[str] = field(default_factory=list, repr=False)
    _output: List[List[str]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ClusterError(f"workers must be >= 1, got {self.workers}")
        try:
            for _ in range(self.workers):
                self._spawn()
        except BaseException:
            self.close()
            raise

    @staticmethod
    def _worker_environment() -> dict:
        """The subprocess environment: repro importable, no inherited chaos.

        Workers must not inherit the driver's fault plan or cluster spec —
        injection belongs to the client side of the wire, and a worker
        that dialled further workers would recurse.
        """
        source_root = str(Path(__file__).resolve().parent.parent.parent)
        environment = dict(os.environ)
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = (
            source_root + os.pathsep + existing if existing else source_root
        )
        environment.pop("REPRO_FAULTS", None)
        environment.pop(ENV_CLUSTER, None)
        return environment

    def _spawn(self) -> None:
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cluster.worker", "--bind", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=self._worker_environment(),
        )
        self._processes.append(process)
        lines: List[str] = []
        self._output.append(lines)
        banner: List[Optional[str]] = [None]
        announced_event = threading.Event()

        def wait_for_banner() -> None:
            # Interpreter noise (runpy warnings, site messages) may precede
            # the banner on the merged stream; scan until it appears.
            for line in iter(process.stdout.readline, ""):
                text = line.strip()
                if text.startswith(("LISTENING ", "ERROR ")):
                    banner[0] = text
                    announced_event.set()
                    break
                lines.append(text)
            else:
                announced_event.set()
            _drain(process.stdout, lines)

        reader = threading.Thread(target=wait_for_banner, daemon=True)
        reader.start()
        announced_event.wait(self.start_timeout_s)
        announced = banner[0]
        if not announced or not announced.startswith("LISTENING "):
            process.kill()
            raise ClusterError(
                f"worker failed to start (banner={announced!r}, "
                f"output={lines[:5]!r})"
            )
        self._addresses.append(announced.split(" ", 1)[1])

    @property
    def addresses(self) -> Tuple[str, ...]:
        """The ``host:port`` addresses the live workers bound."""
        return tuple(self._addresses)

    def spec(self, **overrides) -> ClusterSpec:
        """A :class:`ClusterSpec` over this cluster's workers."""
        base = ClusterSpec(hosts=self.addresses)
        return replace(base, **overrides) if overrides else base

    def kill(self, index: int) -> None:
        """Hard-kill worker ``index`` (SIGKILL); its address stays listed."""
        self._processes[index].kill()
        self._processes[index].wait()

    def output(self, index: int) -> List[str]:
        """Captured stdout/stderr lines of worker ``index`` (diagnostics)."""
        return list(self._output[index])

    def close(self) -> None:
        """Kill every worker and reap the subprocesses."""
        for process in self._processes:
            if process.poll() is None:
                process.kill()
        for process in self._processes:
            process.wait()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
