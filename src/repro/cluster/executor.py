"""`RemoteShardExecutor` — the drop-in pool that dispatches over TCP.

The sharded backend's entire fan-out runs through one seam:
``self._executor().submit(worker, *args)`` followed by ``Future`` results
(:meth:`repro.backend.sharded.ShardedBackend._submit_shard`).  This module
satisfies that contract against a cluster of
:mod:`repro.cluster.worker` processes:

* ``submit`` returns a genuine :class:`concurrent.futures.Future` (an
  inner thread pool drives the blocking socket I/O), so the backend's
  hedging — ``wait([future, hedge], FIRST_COMPLETED)`` — works unchanged.
* Placement is least-outstanding with a round-robin tiebreak, over hosts
  in one of three health states: ``up``, ``suspect`` (one recent
  failure), ``down`` (repeated failures; only re-tried once its probe
  interval elapsed — the persistence breaker's probe-gating applied to
  hosts).
* A connection-level failure (socket error, torn frame, injected
  ``cluster.*`` fault) is handled *inside* the dispatch: the connection
  is discarded, the host demoted, and the task transparently redispatched
  to the next candidate host.  Only when every host has failed does the
  future raise :class:`HostUnavailable` — a :class:`BrokenExecutor`
  subclass, so it enters the backend's existing bounded-retry budget.
* Shard arguments that are flex-offer chunks are interned per connection:
  shipped once under their fingerprint digest
  (:func:`~repro.cluster.framing.shard_key`), referenced by key ever
  after.  The worker answers with the missing keys when its cache
  disagrees, and the executor re-ships.

Application exceptions raised by the shard function on the worker are
re-raised here with their original type, preserving the backend's
error-parity contract (same exception class as the reference backend,
first offending shard wins).
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import BrokenExecutor, Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.flexoffer import FlexOffer
from ..faults.plan import (
    CLUSTER_CONNECT,
    CLUSTER_RECV,
    CLUSTER_SEND,
    FaultPlan,
)
from .cluster import ClusterSpec
from .framing import (
    PROTOCOL_VERSION,
    ShardRef,
    WireError,
    recv_frame,
    send_frame,
    shard_key,
)

__all__ = ["HostUnavailable", "RemoteShardExecutor"]

#: Health states a host cycles through (also the wire order in health()).
_UP, _SUSPECT, _DOWN = "up", "suspect", "down"


class HostUnavailable(BrokenExecutor):
    """Every cluster host refused this dispatch.

    Subclasses :class:`~concurrent.futures.BrokenExecutor` so the sharded
    backend's retry loop (``_RETRYABLE``) catches it with no new wiring —
    but :meth:`RemoteShardExecutor.recover` reports the failure as
    *partial* (hosts are already demoted and probe-gated), so the backend
    retries without tearing the executor down.
    """

    def __init__(self, message: str, host: Optional[str] = None) -> None:
        super().__init__(message)
        self.host = host


class _RemoteRaise(Exception):
    """Internal envelope for an application exception from the worker.

    Exists so a worker-side ``OSError`` raised by the shard *function*
    is not mistaken for a connection failure by the dispatch loop's
    ``except OSError`` — transport problems and transported problems take
    different paths.
    """

    def __init__(self, error: BaseException, remote_traceback: str) -> None:
        super().__init__(str(error))
        self.error = error
        self.remote_traceback = remote_traceback


class _Connection:
    """One pooled socket plus the interning state scoped to it."""

    __slots__ = ("sock", "shipped", "next_task_id")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.shipped: set = set()
        self.next_task_id = 0

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close race
            pass


class _Host:
    """Mutable per-host record: health, load and the idle-connection pool."""

    __slots__ = (
        "address",
        "state",
        "failures",
        "outstanding",
        "dispatched",
        "probe_after",
        "idle",
    )

    def __init__(self, address: str) -> None:
        self.address = address
        self.state = _UP
        self.failures = 0
        self.outstanding = 0
        self.dispatched = 0
        self.probe_after = 0.0
        self.idle: List[_Connection] = []


class RemoteShardExecutor:
    """Dispatch picklable shard tasks to remote workers over framed TCP.

    Parameters
    ----------
    cluster:
        The :class:`~repro.cluster.ClusterSpec` naming the workers.
    max_workers:
        Size of the inner thread pool driving socket I/O — the number of
        concurrently in-flight shards.  Defaults to
        ``len(cluster.hosts) * cluster.connections_per_host``.
    faults:
        Optional :class:`~repro.faults.FaultPlan`; the dispatch path fires
        ``cluster.connect`` before dialing, ``cluster.send`` before each
        outbound frame and ``cluster.recv`` before each inbound frame.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        max_workers: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        cluster = ClusterSpec.from_spec(cluster)
        if max_workers is None:
            max_workers = len(cluster.hosts) * cluster.connections_per_host
        self.cluster = cluster
        self._faults = faults
        self._lock = threading.Lock()
        self._hosts = [_Host(address) for address in cluster.hosts]
        self._rotation = 0
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-cluster"
        )
        # Wire-level counters, surfaced via stats().
        self.dispatched = 0
        self.redispatches = 0
        self.reships = 0
        self.ref_hits = 0
        self.shipped_offers = 0
        self.connects = 0

    # ------------------------------------------------------------------ #
    # The concurrent.futures face
    # ------------------------------------------------------------------ #
    def submit(self, fn, *args, **kwargs) -> Future:
        """Run ``fn(*args)`` on some healthy worker; returns a Future."""
        if kwargs:
            raise TypeError("remote shard tasks take positional arguments only")
        if self._closed:
            raise RuntimeError("cannot schedule new futures after shutdown")
        return self._pool.submit(self._run, fn, args)

    def shutdown(self, wait: bool = True, **kwargs) -> None:
        """Close the thread pool and every pooled connection.

        Workers are *not* told to exit — their lifetime belongs to the
        operator (or :class:`~repro.cluster.LocalCluster`), and other
        executors may be sharing them.
        """
        self._closed = True
        self._pool.shutdown(wait=wait)
        with self._lock:
            connections = [
                connection for host in self._hosts for connection in host.idle
            ]
            for host in self._hosts:
                host.idle = []
        for connection in connections:
            connection.close()

    def recover(self, error: BaseException) -> bool:
        """Whether the backend may retry without replacing this executor.

        The sharded backend's rebuild path calls this on a
        :class:`BrokenExecutor` (see satellite fix in
        ``ShardedBackend._recover_pool``): a :class:`HostUnavailable`
        means the failing hosts are already evicted into ``suspect`` /
        ``down`` and probe-gated, so a retry after backoff is exactly the
        right move and a teardown would only discard warm connections and
        interning state.
        """
        return isinstance(error, HostUnavailable) and not self._closed

    # ------------------------------------------------------------------ #
    # Health and stats
    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, dict]:
        """Per-host state for ``/healthz`` and test assertions."""
        with self._lock:
            return {
                host.address: {
                    "state": host.state,
                    "outstanding": host.outstanding,
                    "dispatched": host.dispatched,
                    "failures": host.failures,
                }
                for host in self._hosts
            }

    def stats(self) -> dict:
        """Wire-level counters (interning effectiveness, redispatches)."""
        with self._lock:
            return {
                "hosts": len(self._hosts),
                "dispatched": self.dispatched,
                "redispatches": self.redispatches,
                "reships": self.reships,
                "ref_hits": self.ref_hits,
                "shipped_offers": self.shipped_offers,
                "connects": self.connects,
            }

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _run(self, fn, args: tuple):
        """Execute one task, sweeping hosts until one answers."""
        function_name = f"{fn.__module__}:{fn.__qualname__}"
        wire_args, chunks = self._intern_args(args)
        keys = frozenset(chunks)
        tried: set = set()
        last_error: Optional[BaseException] = None
        while True:
            host = self._pick_host(tried, keys)
            if host is None:
                raise HostUnavailable(
                    f"no cluster host available for {function_name} "
                    f"(tried {sorted(tried) or 'none'}): {last_error}",
                    host=getattr(last_error, "_repro_host", None),
                )
            tried.add(host.address)
            try:
                connection = self._checkout(host, keys)
            except OSError as error:
                self._mark_failure(host, connected=False)
                last_error = error
                last_error._repro_host = host.address
                continue
            try:
                value = self._dispatch(connection, host, function_name,
                                       wire_args, chunks)
            except _RemoteRaise as wrapped:
                self._checkin(host, connection)
                self._mark_success(host)
                raise wrapped.error from wrapped
            except OSError as error:
                connection.close()
                self._mark_failure(host, connected=True)
                last_error = error
                last_error._repro_host = host.address
                with self._lock:
                    self.redispatches += 1
                continue
            else:
                self._checkin(host, connection)
                self._mark_success(host)
                return value

    def _intern_args(
        self, args: tuple
    ) -> Tuple[list, Dict[str, Sequence[FlexOffer]]]:
        """Replace flex-offer chunks with refs; returns (args, key→chunk)."""
        wire_args: list = []
        chunks: Dict[str, Sequence[FlexOffer]] = {}
        for value in args:
            if (
                isinstance(value, (list, tuple))
                and value
                and all(isinstance(item, FlexOffer) for item in value)
            ):
                key = shard_key(value)
                chunks[key] = list(value)
                wire_args.append(ShardRef(key))
            else:
                wire_args.append(value)
        return wire_args, chunks

    def _pick_host(self, tried: set, keys: frozenset) -> Optional[_Host]:
        """Healthy host preferring interning affinity, then least load.

        Within the best available health tier (``up`` before ``suspect``
        before probe-eligible ``down``), a host with an idle connection
        that already holds every chunk key wins — a reference-by-key
        dispatch beats shipping megabytes to an idle peer.  Ties fall to
        least-outstanding with a round-robin rotation, which is also what
        spreads a *first* dispatch (no affinity anywhere) across hosts and
        what routes a hedge duplicate away from the straggler's host.
        """
        now = time.monotonic()
        with self._lock:
            candidates = [
                host for host in self._hosts if host.address not in tried
            ]
            for states in ((_UP,), (_SUSPECT,), (_DOWN,)):
                pool = [host for host in candidates if host.state in states]
                if states == (_DOWN,):
                    pool = [host for host in pool if now >= host.probe_after]
                if not pool:
                    continue
                self._rotation += 1
                rotation = self._rotation
                chosen = min(
                    enumerate(pool),
                    key=lambda pair: (
                        not (keys and self._warm(pair[1], keys)),
                        pair[1].outstanding,
                        (pair[0] + rotation) % len(pool),
                    ),
                )[1]
                chosen.outstanding += 1
                return chosen
        return None

    @staticmethod
    def _warm(host: _Host, keys: frozenset) -> bool:
        """Whether some idle connection of ``host`` holds every key."""
        return any(
            keys.issubset(connection.shipped) for connection in host.idle
        )

    def _mark_failure(self, host: _Host, connected: bool) -> None:
        with self._lock:
            host.outstanding = max(0, host.outstanding - 1)
            host.failures += 1
            if host.state == _UP and connected:
                host.state = _SUSPECT
            else:
                host.state = _DOWN
            host.probe_after = (
                time.monotonic() + self.cluster.probe_interval_s
            )

    def _mark_success(self, host: _Host) -> None:
        with self._lock:
            host.outstanding = max(0, host.outstanding - 1)
            host.dispatched += 1
            host.state = _UP
            host.probe_after = 0.0

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #
    def _checkout(self, host: _Host, keys: frozenset = frozenset()) -> _Connection:
        """An idle pooled connection (warmest first), or a fresh dial."""
        with self._lock:
            for index, connection in enumerate(host.idle):
                if keys and keys.issubset(connection.shipped):
                    return host.idle.pop(index)
            if host.idle:
                return host.idle.pop()
        if self._faults is not None:
            if self._faults.fire(CLUSTER_CONNECT) is not None:
                from ..faults.plan import FaultInjected

                raise FaultInjected(
                    f"injected fault at {CLUSTER_CONNECT}"
                )
        address, _, port = host.address.rpartition(":")
        sock = socket.create_connection(
            (address, int(port)), timeout=self.cluster.connect_timeout_s
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        connection = _Connection(sock)
        try:
            # The connect timeout also bounds the handshake; task frames
            # afterwards may legitimately block for as long as a shard runs.
            send_frame(sock, {"op": "hello", "version": PROTOCOL_VERSION})
            welcome = recv_frame(sock)
        except OSError:
            connection.close()
            raise
        if welcome is None or welcome.get("op") != "welcome":
            connection.close()
            raise WireError(f"bad handshake from {host.address}: {welcome!r}")
        sock.settimeout(None)
        with self._lock:
            self.connects += 1
        return connection

    def _checkin(self, host: _Host, connection: _Connection) -> None:
        """Return a healthy connection to the host's pool (capped)."""
        with self._lock:
            if (
                not self._closed
                and len(host.idle) < self.cluster.connections_per_host
            ):
                host.idle.append(connection)
                return
        connection.close()

    def _dispatch(
        self,
        connection: _Connection,
        host: _Host,
        function_name: str,
        wire_args: list,
        chunks: Dict[str, Sequence[FlexOffer]],
    ):
        """One task over one connection; OSError/WireError mean 'move on'."""
        connection.next_task_id += 1
        task_id = connection.next_task_id
        ship = {
            key: chunk
            for key, chunk in chunks.items()
            if key not in connection.shipped
        }
        referenced = len(chunks) - len(ship)
        message = {
            "op": "task",
            "id": task_id,
            "fn": function_name,
            "args": wire_args,
            "ship": ship,
        }
        send_frame(
            connection.sock,
            message,
            pickled=True,
            faults=self._faults,
            site=CLUSTER_SEND,
        )
        for attempt in range(2):
            reply = recv_frame(
                connection.sock, faults=self._faults, site=CLUSTER_RECV
            )
            if reply is None:
                raise WireError(f"{host.address} closed during a task")
            if reply.get("op") != "result" or reply.get("id") != task_id:
                raise WireError(
                    f"out-of-protocol reply from {host.address}: "
                    f"op={reply.get('op')!r} id={reply.get('id')!r}"
                )
            # The exchange was well-formed, so the worker's cache now holds
            # everything this frame shipped.
            connection.shipped.update(ship)
            with self._lock:
                self.dispatched += 1
                self.ref_hits += referenced
                self.shipped_offers += sum(
                    len(chunk) for chunk in ship.values()
                )
            if reply.get("ok"):
                return reply.get("value")
            missing = reply.get("missing")
            if missing is None:
                error = reply.get("error")
                if not isinstance(error, BaseException):
                    raise WireError(
                        f"malformed error frame from {host.address}"
                    )
                raise _RemoteRaise(error, reply.get("traceback", ""))
            if attempt == 1:
                break
            # The worker's per-connection cache disagrees with our ledger
            # (it never does on a healthy stream, but a reshipped answer
            # is cheaper than a redispatch).  Send the bytes it asked for.
            connection.shipped.difference_update(missing)
            ship = {key: chunks[key] for key in missing if key in chunks}
            referenced = 0
            if len(ship) != len(missing):
                raise WireError(
                    f"{host.address} asked for unknown shard keys"
                )
            with self._lock:
                self.reships += 1
            message = {
                "op": "task",
                "id": task_id,
                "fn": function_name,
                "args": wire_args,
                "ship": ship,
            }
            send_frame(
                connection.sock,
                message,
                pickled=True,
                faults=self._faults,
                site=CLUSTER_SEND,
            )
        raise WireError(
            f"{host.address} still missing shard keys after a reship"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RemoteShardExecutor hosts={len(self._hosts)} "
            f"dispatched={self.dispatched}>"
        )
