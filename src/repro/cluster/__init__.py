"""``repro.cluster`` — multi-host shard execution over framed TCP.

The distribution layer for the sharded compute backend: long-lived
:mod:`worker <repro.cluster.worker>` processes execute the by-name shard
functions, a :class:`RemoteShardExecutor` satisfies the
``concurrent.futures`` submit/result contract the backend already speaks
(so ``ShardedBackend(executor="remote", cluster=...)`` is the whole
integration), and :class:`ClusterSpec` / ``REPRO_CLUSTER`` name the
hosts.  Everything is stdlib-only — sockets, threads, pickle and the
CRC frame format the write-ahead log already uses on disk.

Failure is a first-class input here exactly as everywhere else in the
library: the wire path fires the ``cluster.connect`` / ``cluster.send``
/ ``cluster.recv`` injection sites of :mod:`repro.faults`, hosts cycle
through up → suspect → down with probe-gated recovery, and a lost
connection redispatches the shard to another host inside the backend's
existing bounded-retry budget.

>>> from repro.cluster import ClusterSpec
>>> ClusterSpec.from_spec("127.0.0.1:7001,127.0.0.1:7002").hosts
('127.0.0.1:7001', '127.0.0.1:7002')
"""

from .cluster import ClusterError, ClusterSpec, ENV_CLUSTER, LocalCluster
from .executor import HostUnavailable, RemoteShardExecutor
from .framing import ShardRef, WireError, recv_frame, send_frame, shard_key


def __getattr__(name):  # pragma: no cover - trivial lazy import
    # ``worker`` stays unimported here so ``python -m repro.cluster.worker``
    # does not re-execute a module runpy already finds in ``sys.modules``.
    if name == "WorkerServer":
        from .worker import WorkerServer

        return WorkerServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ClusterError",
    "ClusterSpec",
    "ENV_CLUSTER",
    "HostUnavailable",
    "LocalCluster",
    "RemoteShardExecutor",
    "ShardRef",
    "WireError",
    "WorkerServer",
    "recv_frame",
    "send_frame",
    "shard_key",
]
