"""Wire framing for the cluster protocol: the WAL idiom over a socket.

Every message between a :class:`~repro.cluster.executor.RemoteShardExecutor`
and a :mod:`repro.cluster.worker` travels as one *frame*::

    <length: uint32 LE> <crc32(payload): uint32 LE> <payload>
    payload = <kind: 1 byte> <body>

— exactly the length-prefixed, CRC-checked record framing the write-ahead
log (:mod:`repro.persist.wal`) uses on disk, applied to a TCP stream.  The
CRC turns a torn or corrupted frame into a detected :class:`WireError`
(a :class:`ConnectionError`, so it enters the same reconnect/redispatch
paths a genuine connection loss does) instead of silently mis-parsed work.

Two payload kinds coexist on one connection:

``J`` (JSON)
    Control traffic — handshakes, pings, shutdown — human-debuggable with
    ``tcpdump`` and versionable without pickling concerns.
``P`` (pickle)
    Task and result frames.  Shard tasks carry measures, flex-offers and
    arbitrary per-shard results; those are exactly the objects the process
    executor already pickles today, so the wire inherits the same
    picklability contract.

Large arguments are *interned* rather than re-shipped: a sequence of
flex-offers is replaced by a :class:`ShardRef` naming its fingerprint
digest, and the bytes travel only when the receiving connection has not
seen that key yet (see the executor/worker modules).
"""

from __future__ import annotations

import hashlib
import json
import pickle
import socket
import struct
import zlib
from typing import Optional, Sequence

from ..faults.plan import FaultPlan

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ShardRef",
    "WireError",
    "recv_frame",
    "send_frame",
    "shard_key",
]

#: Per-frame header: payload length, then the payload's CRC-32 (WAL idiom).
_HEADER = struct.Struct("<II")

#: Hard upper bound on a single frame.  A 1M-offer shard pickles to well
#: under this; anything larger is a corrupted length word, not a task.
MAX_FRAME_BYTES = 1 << 31

#: Bumped on incompatible message-shape changes; checked in the handshake.
PROTOCOL_VERSION = 1

_KIND_JSON = b"J"
_KIND_PICKLE = b"P"


class WireError(ConnectionError):
    """A framing violation: truncated frame, CRC mismatch, bad payload.

    Subclasses :class:`ConnectionError` deliberately — once a stream
    mis-frames there is no way to resynchronise, so callers must treat the
    connection exactly like one the peer closed: discard it, reconnect,
    redispatch.
    """


class ShardRef:
    """A by-key reference to an interned shard argument.

    The executor replaces a shard's flex-offer chunk with its
    :func:`shard_key` before pickling the task frame; the worker resolves
    the key against its per-connection cache.  Pickles to just the key
    string, which is the entire point.
    """

    __slots__ = ("key",)

    def __init__(self, key: str) -> None:
        self.key = key

    def __reduce__(self):
        return (ShardRef, (self.key,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardRef({self.key[:12]}…)"


def shard_key(flex_offers: Sequence) -> str:
    """The interning key of a shard chunk: a digest of its content.

    Mirrors :meth:`repro.backend.cache.MatrixCache.key_of` — per-offer
    structural fingerprint *plus* name (fingerprints are name-blind, but
    worker-side code may consult ``supports`` overrides that see names) —
    folded through BLAKE2b so the wire carries a short hex string instead
    of a tuple of 64-bit integers.
    """
    digest = hashlib.blake2b(digest_size=16)
    for flex_offer in flex_offers:
        digest.update(flex_offer.fingerprint.to_bytes(8, "little"))
        name = flex_offer.name
        if name is not None:
            digest.update(str(name).encode("utf-8", "surrogatepass"))
        digest.update(b"\x00")
    return digest.hexdigest()


def _fire(faults: Optional[FaultPlan], site: Optional[str]) -> None:
    """Fire a client-side injection site; ``kill`` degrades to a raise."""
    if faults is not None and site is not None:
        if faults.fire(site) is not None:
            from ..faults.plan import FaultInjected

            raise FaultInjected(f"injected fault at {site}")


def send_frame(
    sock: socket.socket,
    message: dict,
    *,
    pickled: bool = False,
    faults: Optional[FaultPlan] = None,
    site: Optional[str] = None,
) -> int:
    """Serialise and send one message; returns the payload byte count.

    ``pickled`` selects the payload kind.  The fault site (``cluster.send``
    on the executor side) fires *before* any byte hits the socket, so an
    injected failure behaves like a connection that died between frames —
    the peer never sees a torn frame.
    """
    if pickled:
        payload = _KIND_PICKLE + pickle.dumps(message, pickle.HIGHEST_PROTOCOL)
    else:
        payload = _KIND_JSON + json.dumps(
            message, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(payload)} bytes exceeds the cap")
    _fire(faults, site)
    sock.sendall(_HEADER.pack(len(payload), zlib.crc32(payload)) + payload)
    return len(payload)


def _recv_exact(sock: socket.socket, count: int, at_boundary: bool) -> Optional[bytes]:
    """Exactly ``count`` bytes, ``None`` on clean EOF at a frame boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if at_boundary and remaining == count:
                return None
            raise WireError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket,
    *,
    faults: Optional[FaultPlan] = None,
    site: Optional[str] = None,
) -> Optional[dict]:
    """Receive one message, or ``None`` when the peer closed cleanly.

    Every validation failure — oversized length word, CRC mismatch,
    unknown payload kind, unparseable body, a non-dict message — raises
    :class:`WireError`; a frame is either exactly what the peer framed or
    the connection is dead.
    """
    _fire(faults, site)
    header = _recv_exact(sock, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    length, crc = _HEADER.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise WireError(f"implausible frame length {length}")
    payload = _recv_exact(sock, length, at_boundary=False)
    if zlib.crc32(payload) != crc:
        raise WireError("frame CRC mismatch")
    kind, body = payload[:1], payload[1:]
    try:
        if kind == _KIND_JSON:
            message = json.loads(body.decode("utf-8"))
        elif kind == _KIND_PICKLE:
            message = pickle.loads(body)
        else:
            raise ValueError(f"unknown payload kind {kind!r}")
    except WireError:
        raise
    except Exception as error:
        raise WireError(f"undecodable frame: {error}") from error
    if not isinstance(message, dict):
        raise WireError(f"frame payload is not a message dict: {type(message)}")
    return message
