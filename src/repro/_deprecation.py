"""Shared deprecation machinery for the legacy top-level entry points.

PR 5 moved the recommended public surface onto the session-scoped service
API (:class:`repro.service.FlexSession`); the old process-global entry
points keep working through thin shims that call :func:`warn_deprecated`.
The helper guarantees the *exactly once per call site* contract the
deprecation policy promises — a shim inside a hot loop must not flood the
log — independent of the active warning filters (pytest's ``always`` filter
would otherwise repeat the warning on every call).

The warning is attributed to the *caller* of the shim (``stacklevel``),
so the CI deprecation gate — ``DeprecationWarning`` raised as an error for
warnings attributed to ``repro``'s own modules — fails exactly when package
internals route through a shim, while downstream callers only ever see a
normal, once-per-site warning.
"""

from __future__ import annotations

import sys
import warnings

__all__ = ["warn_deprecated", "reset_deprecation_registry"]

#: Call sites (filename, lineno) that already received their warning.
_SEEN: set[tuple[str, int]] = set()


def warn_deprecated(message: str, stacklevel: int = 2) -> None:
    """Emit a :class:`DeprecationWarning` once per caller call site.

    ``stacklevel`` counts like :func:`warnings.warn` from the *shim*'s
    perspective: the default ``2`` attributes the warning to the shim's
    caller.  Subsequent calls from the same ``(file, line)`` are silent
    until :func:`reset_deprecation_registry`.
    """
    frame = sys._getframe(stacklevel)
    key = (frame.f_code.co_filename, frame.f_lineno)
    if key in _SEEN:
        return
    _SEEN.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)


def reset_deprecation_registry() -> None:
    """Forget every recorded call site (test isolation hook)."""
    _SEEN.clear()
