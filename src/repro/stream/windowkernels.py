"""Array-backed sliding-window measure statistics (the NumPy window kernel).

The scalar :class:`~repro.stream.window.MeasureWindow` stores its samples in
a ``collections.deque`` of Python tuples and answers every statistic with a
Python fold — fine at dashboard rates, but the last scalar hot path of
high-frequency ``Tick`` sampling.  :class:`ArrayMeasureWindow` keeps the
same public API on packed storage, in the window-function-over-ordered-rows
shape the windowed-analytics literature uses:

* samples live in a **preallocated ``float64`` ring buffer** (plus a plain
  Python ring of the sample times) — :meth:`record` writes one slot and
  never allocates;
* **sliding min/max** are O(1) amortized via *monotonic deques* holding
  ``(sequence, value)`` pairs over ring positions: each sample is pushed
  and popped at most once, and a query reads the front;
* **total/mean** run as one vectorized ``cumsum`` pass over the
  chronological live slice — ``cumsum`` accumulates strictly left to
  right, so the final prefix equals the scalar kernel's sequential
  ``sum()`` bit for bit (a pairwise ``np.sum`` would not);
* **percentile/summary** statistics come from a single sort pass over the
  live slice, memoised until the next :meth:`record` exactly like the
  scalar kernel's sorted view.

Every query is conformance-pinned to the scalar kernel: identical floats
on ``total``/``min``/``max``/``count`` and (in practice also identical,
asserted to 1e-9) ``mean``/percentiles, for any interleaving of records,
ring evictions and queries — the differential window-conformance suite in
``tests/stream/test_window_kernels.py`` drives both kernels side by side.

Selection is per session, through the compute-backend contract
(:meth:`~repro.backend.dispatch.ComputeBackend.measure_window`): reference
sessions keep the scalar kernel, the NumPy and sharded tiers get this one.
The ``REPRO_WINDOW_KERNEL`` environment variable (or
``SessionConfig(window_kernel=...)``) overrides the automatic choice.

This module imports NumPy at module level, mirroring
:mod:`repro.stream.live`; the engine imports it lazily and falls back to
the scalar kernel when the import fails.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from .events import StreamError
from .window import check_sample, nearest_rank

__all__ = ["ArrayMeasureWindow"]


class ArrayMeasureWindow:
    """A :class:`~repro.stream.window.MeasureWindow` on packed arrays.

    Same constructor, same methods, same exceptions, same floats — only the
    storage and the per-query complexity differ.
    """

    #: Kernel identifier (the scalar kernel reports ``"scalar"``).
    kernel = "array"

    __slots__ = (
        "_capacity",
        "_times",
        "_values",
        "_pushed",
        "_min_deque",
        "_max_deque",
        "_sorted",
    )

    def __init__(self, capacity: int) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise StreamError(f"capacity must be a positive int, got {capacity!r}")
        self._capacity = capacity
        #: Sample times ride in a plain Python ring: they are never folded,
        #: and a list imposes no ``int64`` range restriction on the clock.
        self._times: list[int] = [0] * capacity
        self._values = np.zeros(capacity, dtype=np.float64)
        #: Total samples ever recorded; the next write slot is
        #: ``_pushed % capacity`` and retained count is ``min(_pushed, cap)``.
        self._pushed = 0
        #: ``(sequence, value)`` pairs, values strictly increasing front to
        #: back; the front is the sliding minimum.
        self._min_deque: deque[tuple[int, float]] = deque()
        #: Mirror image for the sliding maximum.
        self._max_deque: deque[tuple[int, float]] = deque()
        self._sorted: Optional[np.ndarray] = None

    @property
    def capacity(self) -> int:
        """Maximum number of retained samples."""
        return self._capacity

    def __len__(self) -> int:
        return min(self._pushed, self._capacity)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(self, time: int, value: float) -> None:
        """Record one sample in O(1) amortized — no allocation, no sort.

        Non-finite samples are rejected (:class:`StreamError`) before any
        state change, exactly like the scalar kernel.
        """
        value = check_sample(value)
        sequence = self._pushed
        position = sequence % self._capacity
        self._times[position] = time
        self._values[position] = value
        self._pushed = sequence + 1
        oldest = self._pushed - len(self)
        minimum, maximum = self._min_deque, self._max_deque
        while minimum and minimum[-1][1] >= value:
            minimum.pop()
        minimum.append((sequence, value))
        while minimum[0][0] < oldest:
            minimum.popleft()
        while maximum and maximum[-1][1] <= value:
            maximum.pop()
        maximum.append((sequence, value))
        while maximum[0][0] < oldest:
            maximum.popleft()
        self._sorted = None

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def _chronological(self) -> np.ndarray:
        """The live slice in record order (a view when the ring is linear)."""
        count = len(self)
        if count < self._capacity:
            return self._values[:count]
        position = self._pushed % self._capacity
        if position == 0:
            return self._values
        return np.concatenate((self._values[position:], self._values[:position]))

    def _ordered(self) -> np.ndarray:
        """The live slice sorted ascending (memoised until a record)."""
        if self._sorted is None:
            self._sorted = np.sort(self._chronological())
        return self._sorted

    def _sequential_total(self) -> np.float64:
        """Strict left-to-right sum of the live slice (``cumsum``'s last
        prefix) — bit-identical to the scalar kernel's ``sum()`` fold."""
        return np.cumsum(self._chronological())[-1]

    def samples(self) -> list[tuple[int, float]]:
        """The retained ``(time, value)`` samples, oldest first."""
        count = len(self)
        if count < self._capacity:
            times = self._times[:count]
        else:
            position = self._pushed % self._capacity
            times = self._times[position:] + self._times[:position]
        return list(zip(times, self._chronological().tolist()))

    def values(self) -> list[float]:
        """The retained values, oldest first (Python floats)."""
        return self._chronological().tolist()

    # ------------------------------------------------------------------ #
    # Window statistics
    # ------------------------------------------------------------------ #
    @property
    def last(self) -> Optional[float]:
        """The most recent sample value (``None`` when empty)."""
        if not self._pushed:
            return None
        return float(self._values[(self._pushed - 1) % self._capacity])

    def total(self) -> float:
        """Sum of the retained values (sequential-fold semantics)."""
        if not len(self):
            return 0.0
        return float(self._sequential_total())

    def mean(self) -> float:
        """Mean of the retained values; 0.0 for an empty window."""
        count = len(self)
        if not count:
            return 0.0
        return float(self._sequential_total() / count)

    def minimum(self) -> float:
        """Smallest retained value, read off the monotonic deque in O(1)."""
        if not len(self):
            raise StreamError("an empty window has no minimum")
        return self._min_deque[0][1]

    def maximum(self) -> float:
        """Largest retained value, read off the monotonic deque in O(1)."""
        if not len(self):
            raise StreamError("an empty window has no maximum")
        return self._max_deque[0][1]

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the retained values, ``q`` in [0, 100].

        Shares :func:`~repro.stream.window.nearest_rank` with the scalar
        kernel, so ``percentile(0)``/``percentile(100)`` are exactly
        :meth:`minimum`/:meth:`maximum` here too.
        """
        if not 0 <= q <= 100:
            raise StreamError(f"percentile must be in [0, 100], got {q}")
        if not len(self):
            raise StreamError("an empty window has no percentiles")
        return float(nearest_rank(self._ordered(), q))

    def summary(self) -> dict[str, float]:
        """A serialisable statistics block over the retained window.

        One memoised sort pass feeds min/max and both percentiles; one
        ``cumsum`` pass feeds total and mean — same keys, same floats as
        the scalar kernel's block.
        """
        count = len(self)
        if not count:
            return {"count": 0}
        ordered = self._ordered()
        total = self._sequential_total()
        return {
            "count": float(count),
            "last": self.last,
            "total": float(total),
            "mean": float(total / count),
            "min": float(ordered[0]),
            "max": float(ordered[-1]),
            "p50": float(nearest_rank(ordered, 50)),
            "p90": float(nearest_rank(ordered, 90)),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayMeasureWindow({len(self)}/{self._capacity} samples)"
