"""Sliding-window tracking of population-level flexibility measures.

The streaming engine's population changes continuously, so a single point
value of a set-wise measure says little about how much flexibility the
Aggregator *has been* holding — the operational questions ("what was the
mean vector flexibility over the last hour?", "what is the p90 assignment
count we can promise the market?") are windowed.  This module provides the
storage and the statistics:

* :class:`RingBuffer` — fixed-capacity circular storage; pushing the
  ``capacity + 1``-th sample overwrites the oldest one in O(1) with no
  re-allocation, so sampling every tick stays cheap no matter how long the
  engine runs;
* :class:`MeasureWindow` — a ring buffer of ``(time, value)`` samples of one
  measure with total / mean / min / max / nearest-rank percentile over the
  retained window;
* :class:`WindowTracker` — one window per tracked measure key, fed from the
  :class:`~repro.measures.FlexibilitySetReport` the engine computes on every
  :class:`~repro.stream.events.Tick`.

Any :class:`~repro.measures.FlexibilityMeasure` can be tracked — the tracker
keys windows by ``measure.key`` and reads whatever set values the engine's
report contains, so custom measures registered with the measure registry are
windowed exactly like the paper's eight.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from typing import Optional

from .events import StreamError

__all__ = ["RingBuffer", "MeasureWindow", "WindowTracker", "nearest_rank"]


def nearest_rank(ordered, q: float) -> float:
    """Nearest-rank percentile over an ascending sequence, ``q`` in [0, 100].

    Shared by the scalar :class:`MeasureWindow` and the array-backed
    :class:`~repro.stream.windowkernels.ArrayMeasureWindow` so both kernels
    agree bit-for-bit.  The boundaries are handled explicitly rather than
    through the rank formula: ``q == 0`` is defined as the window minimum
    and ``q == 100`` as the window maximum for every window size — the
    formula's ``ceil(q * n / 100)`` lands there too for well-behaved
    floats, but the contract must not hinge on rounding behaviour.
    """
    count = len(ordered)
    if q <= 0:
        return ordered[0]
    if q >= 100:
        return ordered[count - 1]
    rank = max(1, math.ceil(q * count / 100))
    return ordered[min(rank, count) - 1]


def check_sample(value: float) -> float:
    """Validate one window sample: a finite float, or :class:`StreamError`.

    Windowed statistics are meaningless once a NaN or infinity enters the
    ring (``min``/``max``/percentiles would silently poison every later
    query), so both window kernels reject non-finite samples at the door.
    """
    value = float(value)
    if not math.isfinite(value):
        raise StreamError(f"window samples must be finite, got {value!r}")
    return value


class RingBuffer:
    """Fixed-capacity circular buffer with O(1) push and oldest-first iteration.

    A thin validated facade over ``collections.deque(maxlen=capacity)`` —
    the stdlib already implements the ring semantics (overwrite-oldest on
    push, oldest-first iteration) in C.
    """

    __slots__ = ("_items",)

    def __init__(self, capacity: int) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise StreamError(f"capacity must be a positive int, got {capacity!r}")
        self._items: deque[object] = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        """Maximum number of retained items."""
        return self._items.maxlen  # type: ignore[return-value]

    @property
    def full(self) -> bool:
        """Whether the next push will evict the oldest item."""
        return len(self._items) == self._items.maxlen

    def push(self, item: object) -> None:
        """Append an item, evicting the oldest one when full."""
        self._items.append(item)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[object]:
        return iter(self._items)

    def items(self) -> list[object]:
        """The retained items, oldest first."""
        return list(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RingBuffer({len(self._items)}/{self.capacity})"


class MeasureWindow:
    """A sliding window of ``(time, value)`` samples of one set-wise measure.

    The sorted view backing the percentile/summary statistics is memoised
    and invalidated on :meth:`record`: a dashboard polling ``p50``/``p90``
    repeatedly between ticks sorts once and reads O(1) afterwards, instead
    of re-sorting the whole retained window per query.

    This is the *scalar* window kernel — pure-Python storage, no NumPy
    dependency — and the semantic reference for the array-backed
    :class:`~repro.stream.windowkernels.ArrayMeasureWindow`, which must
    agree with it exactly on every query (the differential
    window-conformance suite pins the contract).
    """

    #: Kernel identifier (the array kernel reports ``"array"``).
    kernel = "scalar"

    def __init__(self, capacity: int) -> None:
        self._buffer = RingBuffer(capacity)
        self._sorted: Optional[list[float]] = None

    @property
    def capacity(self) -> int:
        """Maximum number of retained samples."""
        return self._buffer.capacity

    def record(self, time: int, value: float) -> None:
        """Record one population-level sample taken at ``time``.

        Non-finite samples are rejected (:class:`StreamError`) before any
        state change — see :func:`check_sample`.
        """
        self._buffer.push((time, check_sample(value)))
        self._sorted = None

    def _ordered(self) -> list[float]:
        """The retained values in ascending order (memoised until a push)."""
        if self._sorted is None:
            self._sorted = sorted(self.values())
        return self._sorted

    def samples(self) -> list[tuple[int, float]]:
        """The retained ``(time, value)`` samples, oldest first."""
        return self._buffer.items()  # type: ignore[return-value]

    def values(self) -> list[float]:
        """The retained values, oldest first."""
        return [value for _, value in self._buffer]  # type: ignore[misc]

    def __len__(self) -> int:
        return len(self._buffer)

    # ------------------------------------------------------------------ #
    # Window statistics
    # ------------------------------------------------------------------ #
    @property
    def last(self) -> Optional[float]:
        """The most recent sample value (``None`` when empty)."""
        values = self.values()
        return values[-1] if values else None

    def total(self) -> float:
        """Sum of the retained values."""
        return float(sum(self.values()))

    def mean(self) -> float:
        """Mean of the retained values; 0.0 for an empty window."""
        values = self.values()
        if not values:
            return 0.0
        return float(sum(values) / len(values))

    def minimum(self) -> float:
        """Smallest retained value."""
        values = self.values()
        if not values:
            raise StreamError("an empty window has no minimum")
        return min(values)

    def maximum(self) -> float:
        """Largest retained value."""
        values = self.values()
        if not values:
            raise StreamError("an empty window has no maximum")
        return max(values)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the retained values, ``q`` in [0, 100].

        ``percentile(0)`` is exactly :meth:`minimum` and ``percentile(100)``
        exactly :meth:`maximum`, for every window size (see
        :func:`nearest_rank`).
        """
        if not 0 <= q <= 100:
            raise StreamError(f"percentile must be in [0, 100], got {q}")
        values = self._ordered()
        if not values:
            raise StreamError("an empty window has no percentiles")
        return nearest_rank(values, q)

    def summary(self) -> dict[str, float]:
        """A serialisable statistics block over the retained window."""
        values = self.values()
        if not values:
            return {"count": 0}
        ordered = self._ordered()
        count = len(values)
        return {
            "count": float(count),
            "last": values[-1],
            "total": float(sum(values)),
            "mean": float(sum(values) / count),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": nearest_rank(ordered, 50),
            "p90": nearest_rank(ordered, 90),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MeasureWindow({len(self)}/{self.capacity} samples)"


class WindowTracker:
    """One sliding window per tracked measure, fed from engine reports.

    Parameters
    ----------
    measure_keys:
        The measure keys to track (e.g. ``["time", "vector"]``); windows are
        created eagerly so :meth:`window` never KeyErrors for a tracked key.
    capacity:
        Samples retained per measure window.
    window_factory:
        Callable building one window from a capacity — the window *kernel*.
        Defaults to the scalar :class:`MeasureWindow`; the streaming engine
        injects its backend's kernel here (the NumPy tier supplies the
        array-backed
        :class:`~repro.stream.windowkernels.ArrayMeasureWindow`).
    """

    def __init__(
        self,
        measure_keys: Iterable[str],
        capacity: int = 64,
        window_factory: Optional[Callable[[int], MeasureWindow]] = None,
    ) -> None:
        factory = window_factory if window_factory is not None else MeasureWindow
        self._windows: dict[str, MeasureWindow] = {
            key: factory(capacity) for key in measure_keys
        }
        if not self._windows:
            raise StreamError("WindowTracker needs at least one measure key")
        self.capacity = capacity

    @property
    def kernel(self) -> str:
        """The window kernel in use (``"scalar"`` or ``"array"``)."""
        window = next(iter(self._windows.values()))
        return getattr(window, "kernel", "scalar")

    @property
    def measure_keys(self) -> list[str]:
        """The tracked measure keys."""
        return list(self._windows)

    def window(self, measure_key: str) -> MeasureWindow:
        """The window of one tracked measure."""
        try:
            return self._windows[measure_key]
        except KeyError:
            raise StreamError(
                f"measure {measure_key!r} is not tracked; tracked: "
                f"{sorted(self._windows)}"
            ) from None

    def sample(self, time: int, values: dict[str, float]) -> None:
        """Record one population-level sample per tracked measure.

        ``values`` is the ``values`` mapping of a
        :class:`~repro.measures.FlexibilitySetReport`; tracked measures the
        report skipped (unsupported on the current population) are simply
        not sampled this round.  Non-finite set values (a measure's float
        sum can legitimately overflow to ``inf`` on extreme populations)
        are likewise not sampled — the window kernels reject them
        (:func:`check_sample`), and one degenerate tick must not poison a
        whole window of sound statistics.
        """
        for key, window in self._windows.items():
            value = values.get(key)
            if value is not None and math.isfinite(value):
                window.record(time, value)

    def summary(self) -> dict[str, dict[str, float]]:
        """``{measure_key: window statistics}`` for every tracked measure."""
        return {key: window.summary() for key, window in self._windows.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WindowTracker({sorted(self._windows)})"
