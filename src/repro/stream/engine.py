"""The streaming flexibility engine.

:class:`StreamingEngine` is the event-driven counterpart of the batch
pipeline ``group_by_grid`` → ``aggregate_start_aligned`` → ``evaluate_set``.
It consumes the event model of :mod:`repro.stream.events` and maintains,
incrementally,

* the live population (arrival order preserved),
* the grid grouping (:class:`~repro.stream.grouping.OnlineGridIndex`),
* one :class:`~repro.stream.aggregate.IncrementalAggregate` per grid cell,
* the per-offer values of every configured flexibility measure (computed
  once on arrival, never recomputed),
* a live packed :class:`~repro.backend.matrix.ProfileMatrix` of the
  surviving population plus per-measure value columns
  (:class:`~repro.stream.live.LivePopulation`) — maintained in O(Δ) per
  event through append/tombstone/compact instead of being re-packed from
  scratch, published into the
  :data:`~repro.backend.cache.matrix_cache` via :meth:`live_matrix`, and
* optionally a :class:`~repro.stream.window.WindowTracker` sampling the
  population-level set values of the tracked measures on every
  :class:`~repro.stream.events.Tick`, fed from the packed value columns.

The contract that makes the engine trustworthy is *batch equivalence*: after
any event stream, :meth:`StreamingEngine.snapshot` returns exactly the
groups, aggregates and :class:`~repro.measures.FlexibilitySetReport` that
the batch pipeline produces on the surviving offers in arrival order.  All
incremental state is integer sums / cached floats combined in the same order
the batch path would combine them, so the equality is exact, not
approximate.
"""

from __future__ import annotations

import heapq
import os
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional, Union

from ..aggregation.alignment import aggregate_start_aligned
from ..aggregation.base import AggregatedFlexOffer
from ..aggregation.grouping import GroupingParameters
from ..backend.cache import matrix_cache
from ..core.flexoffer import FlexOffer
from ..measures.base import FlexibilityMeasure
from ..measures.setwise import FlexibilitySetReport, MeasureSpec, resolve_measures
from .aggregate import IncrementalAggregate
from .events import (
    OfferArrived,
    OfferAssigned,
    OfferExpired,
    StreamError,
    StreamEvent,
    Tick,
)
from .grouping import CellKey, OnlineGridIndex
from .window import MeasureWindow, WindowTracker

__all__ = [
    "EngineStats",
    "EngineSnapshot",
    "StreamingEngine",
    "ENV_WINDOW_KERNEL",
]

#: Environment variable forcing the window kernel (``scalar`` / ``array``)
#: for engines that were not given an explicit ``window_kernel``.
ENV_WINDOW_KERNEL = "REPRO_WINDOW_KERNEL"

#: Hook signature: ``hook(offer_id, flex_offer, event)``.
EngineHook = Callable[[str, FlexOffer, StreamEvent], None]


@dataclass
class EngineStats:
    """Running counters of everything the engine has processed."""

    events: int = 0
    arrived: int = 0
    expired: int = 0
    assigned: int = 0
    ticks: int = 0
    #: Sum of the ``price`` fields of the assignments that carried one.
    revenue: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """A serialisable copy of the counters."""
        return {
            "events": self.events,
            "arrived": self.arrived,
            "expired": self.expired,
            "assigned": self.assigned,
            "ticks": self.ticks,
            "revenue": self.revenue,
        }


@dataclass(frozen=True)
class EngineSnapshot:
    """A consistent view of the engine's state after some prefix of events.

    The fields are exactly the structures the batch pipeline produces — and
    that :mod:`repro.analysis.comparison` and the examples already consume —
    so a snapshot can be dropped into any existing batch analysis:

    * ``live`` ≡ the surviving flex-offers in arrival order (the input the
      batch pipeline would be run on),
    * ``groups`` ≡ ``group_by_grid(live, parameters)``,
    * ``aggregates`` ≡ ``aggregate_all(groups)``,
    * ``report`` ≡ ``evaluate_set(live, measures)``.
    """

    #: Stream time of the last processed :class:`Tick` (``None`` before one).
    time: Optional[int]
    #: Surviving flex-offers in arrival order.
    live: tuple[FlexOffer, ...]
    #: The grid grouping of the live population.
    groups: tuple[tuple[FlexOffer, ...], ...]
    #: One aggregate per group, named ``aggregate-<index>``.
    aggregates: tuple[AggregatedFlexOffer, ...]
    #: Set-wise flexibility of the live population under every measure.
    report: FlexibilitySetReport
    #: Event counters at snapshot time.
    stats: EngineStats
    #: Per-measure sliding-window statistics (empty without a tracker).
    window_summary: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of live flex-offers."""
        return len(self.live)


class StreamingEngine:
    """Event-driven maintenance of grouping, aggregation and measures.

    Parameters
    ----------
    parameters:
        Grid tolerances, shared verbatim with the batch ``group_by_grid``.
    measures:
        Measure keys / instances to maintain (defaults to every registered
        measure, like ``evaluate_set``).
    window_capacity:
        When positive, a :class:`WindowTracker` samples the population-level
        value of every configured measure on each :class:`Tick`, retaining
        this many samples per measure.
    tracked_measures:
        Optional subset of the configured measure keys the tracker should
        sample (defaults to all of them).  Tick-time sampling computes set
        values for the tracked measures only — fed from the live packed
        value columns, never from a full report rebuild.
    auto_expire:
        When ``True``, a :class:`Tick` at time ``t`` expires every live
        offer whose latest start precedes ``t`` (its start window has
        lapsed and it can no longer be scheduled).
    on_arrived, on_assigned, on_expired:
        Optional hooks called *after* the engine's own state change, with
        ``(offer_id, flex_offer, event)`` — the integration points for a
        scheduler re-planning on churn or a market session observing fills.
    cache:
        The :class:`~repro.backend.cache.MatrixCache` the engine publishes
        its live matrix into (and invalidates on mutation); ``None`` uses
        the process-wide :data:`~repro.backend.cache.matrix_cache`.  The
        service layer injects the session's own cache here so interleaved
        sessions never evict each other's packed state.
    backend:
        Backend selection (registered name or instance) for the engine's
        own bulk calls (:meth:`bulk_arrive`); ``None`` resolves the active
        backend per call, exactly as before.
    compact_threshold:
        Tombstone ratio at which the live matrix auto-compacts; ``None``
        reads ``REPRO_MATRIX_COMPACT`` and falls back to the default.
    window_kernel:
        Which sliding-window kernel backs the tracker's measure windows:
        ``"scalar"`` (the pure-Python :class:`MeasureWindow`), ``"array"``
        (the NumPy ring-buffer
        :class:`~repro.stream.windowkernels.ArrayMeasureWindow`), or
        ``None`` to consult ``REPRO_WINDOW_KERNEL`` and then the engine
        backend's :meth:`~repro.backend.dispatch.ComputeBackend.measure_window`
        hook — reference sessions keep the scalar kernel, the NumPy and
        sharded tiers get the array kernel.  Both kernels are
        conformance-pinned to each other, so the choice never changes a
        statistic, only its cost.
    """

    def __init__(
        self,
        parameters: GroupingParameters = GroupingParameters(),
        measures: Optional[Iterable[MeasureSpec]] = None,
        window_capacity: int = 0,
        auto_expire: bool = False,
        on_arrived: Optional[EngineHook] = None,
        on_assigned: Optional[EngineHook] = None,
        on_expired: Optional[EngineHook] = None,
        tracked_measures: Optional[Iterable[str]] = None,
        cache=None,
        backend=None,
        compact_threshold: Optional[float] = None,
        window_kernel: Optional[str] = None,
    ) -> None:
        self.parameters = parameters
        self._cache = cache if cache is not None else matrix_cache
        self._backend_spec = backend
        self._compact_threshold = compact_threshold
        self.measures: list[FlexibilityMeasure] = resolve_measures(measures)
        self.auto_expire = auto_expire
        self.on_arrived = on_arrived
        self.on_assigned = on_assigned
        self.on_expired = on_expired
        self.stats = EngineStats()
        self.time: Optional[int] = None
        measure_keys = [measure.key for measure in self.measures]
        if tracked_measures is None:
            tracked = measure_keys
        else:
            tracked = list(tracked_measures)
            unknown = sorted(set(tracked) - set(measure_keys))
            if unknown:
                raise StreamError(
                    f"tracked measures {unknown} are not configured; "
                    f"configured: {sorted(measure_keys)}"
                )
        self.tracker: Optional[WindowTracker] = (
            WindowTracker(
                tracked,
                window_capacity,
                window_factory=self._window_factory(window_kernel),
            )
            if window_capacity
            else None
        )
        #: The resolved window kernel name (``None`` without a tracker).
        self.window_kernel: Optional[str] = (
            self.tracker.kernel if self.tracker is not None else None
        )
        self._index = OnlineGridIndex(parameters)
        self._aggregates: dict[CellKey, IncrementalAggregate] = {}
        #: offer id -> cached per-measure values (supported measures only).
        self._values: dict[str, dict[str, float]] = {}
        #: offer id -> measure keys that do not support the offer.
        self._unsupported: dict[str, tuple[str, ...]] = {}
        #: measure key -> number of live offers the measure does not support.
        self._unsupported_counts: dict[str, int] = {
            measure.key: 0 for measure in self.measures
        }
        #: (latest_start, offer_id) min-heap driving auto-expiry; entries for
        #: offers that already left are invalidated lazily.
        self._deadlines: list[tuple[int, str]] = []
        #: Matrix-cache generation last synchronised with: lets a mutation
        #: skip the O(live) cache-invalidation scan when nothing was packed
        #: since the previous mutation (the common streaming case).
        self._cache_generation_seen = self._cache.generation
        #: Incrementally maintained packed state (matrix + value columns);
        #: ``None`` without NumPy or after an unpackable offer arrived, in
        #: which case every read path falls back to the per-offer dicts.
        self._live = self._new_live()
        #: The published frozen snapshot of the live matrix and the cache
        #: key it was seeded under (discarded O(1) on the next mutation).
        self._published = None
        self._published_key: Optional[tuple] = None

    def _new_live(self):
        """A fresh columnar live state, or ``None`` when NumPy is absent."""
        try:
            from .live import LivePopulation
        except ImportError:  # pragma: no cover - exercised only without numpy
            return None
        return LivePopulation(
            [measure.key for measure in self.measures],
            compact_threshold=self._compact_threshold,
        )

    def _window_factory(self, requested: Optional[str]):
        """Resolve the window kernel into a ``capacity -> window`` factory.

        Resolution order: the explicit ``window_kernel`` argument, then the
        ``REPRO_WINDOW_KERNEL`` environment variable, then the engine
        backend's
        :meth:`~repro.backend.dispatch.ComputeBackend.measure_window` hook.
        An invalid explicit name raises; an invalid environment value warns
        and is ignored (matching the backend env knobs); ``"array"`` without
        NumPy raises only when requested explicitly — the backend hook
        already degrades to the scalar kernel on its own.
        """
        from ..backend.dispatch import _warn_ignored_env, get_backend

        if requested is None:
            env_value = os.environ.get(ENV_WINDOW_KERNEL)
            if env_value is not None:
                if env_value in ("scalar", "array"):
                    requested = env_value
                else:
                    _warn_ignored_env(
                        ENV_WINDOW_KERNEL, env_value, "'scalar' or 'array'"
                    )
        if requested is None:
            return get_backend(self._backend_spec).measure_window
        if requested == "scalar":
            return MeasureWindow
        if requested == "array":
            try:
                from .windowkernels import ArrayMeasureWindow
            except ImportError:
                raise StreamError(
                    "window_kernel 'array' needs NumPy, which is not installed"
                ) from None
            return ArrayMeasureWindow
        raise StreamError(
            f"unknown window kernel {requested!r}; expected 'scalar' or 'array'"
        )

    # ------------------------------------------------------------------ #
    # Event consumption
    # ------------------------------------------------------------------ #
    def apply(self, event: StreamEvent) -> None:
        """Apply one event to the engine's state."""
        if isinstance(event, OfferArrived):
            self._apply_arrival(event)
        elif isinstance(event, OfferExpired):
            self._apply_expiry(event)
        elif isinstance(event, OfferAssigned):
            self._apply_assignment(event)
        elif isinstance(event, Tick):
            self._apply_tick(event)
        else:
            raise StreamError(f"unknown event type: {event!r}")
        self.stats.events += 1

    def replay(self, events: Iterable[StreamEvent]) -> "StreamingEngine":
        """Apply a whole event stream in order; returns ``self`` for chaining."""
        for event in events:
            self.apply(event)
        return self

    def bulk_arrive(
        self,
        arrivals: Iterable[Union[OfferArrived, tuple[str, FlexOffer]]],
    ) -> "StreamingEngine":
        """Ingest many arrivals at once, batching the measure evaluation.

        Per-offer measure values — the only O(measures × profile) work of an
        arrival — are computed for the whole batch through the active
        compute backend (one vectorized pass under the NumPy backend) before
        the offers are inserted one by one, so the resulting engine state is
        exactly what the same arrivals applied individually would produce.
        Accepts :class:`OfferArrived` events or ``(offer_id, flex_offer)``
        pairs; returns ``self`` for chaining.
        """
        from ..backend.dispatch import get_backend

        events = [
            arrival
            if isinstance(arrival, OfferArrived)
            else OfferArrived(arrival[0], arrival[1])
            for arrival in arrivals
        ]
        arriving = [event.flex_offer for event in events]
        # The arrival batch is one-shot, so nothing it packs (whole-batch or
        # per-shard chunk matrices under the sharded backend) may take up
        # matrix-cache capacity or bump the generation counter.
        with self._cache.bypass():
            batched = get_backend(self._backend_spec).per_offer_values(
                self.measures, arriving
            )
        # One invalidation for the whole batch: the per-insert scan would be
        # O(live) each.
        self._note_mutation()
        for event, cached in zip(events, batched):
            self._apply_arrival(event, cached=cached, sync_cache=False)
            self.stats.events += 1
        self._cache_generation_seen = self._cache.generation
        return self

    # ------------------------------------------------------------------ #
    # State export / restore (the persistence layer's engine hooks)
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """A JSON-ready dictionary of the engine's full mutable state.

        The inverse of :meth:`restore_state` — the body of a
        :mod:`repro.persist` snapshot.  It carries the live offers in
        arrival order *with their cached per-measure values*, so a restore
        skips the O(measures × profile) arrival evaluation entirely (the
        cost that dominates a full replay), plus the event counters, the
        stream clock and the window tracker's retained samples.
        Configuration (grouping, measures, window capacity, auto-expiry) is
        deliberately **not** included: a restored engine must be built with
        the same parameters, which the service layer guarantees by
        persisting its :class:`~repro.service.SessionConfig` alongside.
        """
        from ..io.serialization import flexoffer_to_dict, float_to_wire

        live = [
            {
                "id": offer_id,
                "offer": flexoffer_to_dict(self._index.get(offer_id)),
                "values": {
                    key: float_to_wire(value)
                    for key, value in self._values[offer_id].items()
                },
            }
            for offer_id in self._index
        ]
        windows = {}
        if self.tracker is not None:
            windows = {
                key: [
                    [time, float_to_wire(value)]
                    for time, value in self.tracker.window(key).samples()
                ]
                for key in self.tracker.measure_keys
            }
        return {
            "time": self.time,
            "stats": {
                key: float_to_wire(value)
                for key, value in self.stats.as_dict().items()
            },
            "live": live,
            "windows": windows,
        }

    def restore_state(self, payload: dict) -> "StreamingEngine":
        """Load :meth:`export_state` output into this (pristine) engine.

        The live offers re-enter through the ordinary arrival path with
        their persisted measure values — rebuilding the grid index, the
        incremental aggregates, the live matrix, the value columns and the
        auto-expiry deadlines without re-evaluating a single measure — and
        the counters, the clock and the window samples are then restored
        verbatim.  Hooks do not fire for restored arrivals (they already
        fired in the process that exported the state).  Raises
        :class:`StreamError` when the engine has already processed events
        or the payload names measures this engine is not configured with
        (config drift between export and restore must be loud, never a
        silently different report).
        """
        from ..io.serialization import flexoffer_from_dict, float_from_wire

        if self.stats.events or len(self._index):
            raise StreamError(
                "restore_state needs a pristine engine "
                f"(this one has processed {self.stats.events} events)"
            )
        configured = {measure.key for measure in self.measures}
        arrival_hook = self.on_arrived
        self.on_arrived = None
        self._note_mutation()
        try:
            for entry in payload.get("live", ()):
                values = {
                    key: float_from_wire(value)
                    for key, value in entry["values"].items()
                }
                unknown = sorted(set(values) - configured)
                if unknown:
                    raise StreamError(
                        f"persisted values for unconfigured measures {unknown}; "
                        f"configured: {sorted(configured)}"
                    )
                self._apply_arrival(
                    OfferArrived(
                        entry["id"], flexoffer_from_dict(entry["offer"])
                    ),
                    cached=values,
                    sync_cache=False,
                )
        finally:
            self.on_arrived = arrival_hook
        self._cache_generation_seen = self._cache.generation
        self.stats = EngineStats(
            **{
                key: float_from_wire(value)
                for key, value in payload["stats"].items()
            }
        )
        self.time = payload["time"]
        windows = payload.get("windows") or {}
        if windows and self.tracker is None:
            raise StreamError(
                "persisted window samples but no tracker is configured"
            )
        if self.tracker is not None:
            unknown = sorted(set(windows) - set(self.tracker.measure_keys))
            if unknown:
                raise StreamError(
                    f"persisted windows for untracked measures {unknown}"
                )
            for key, samples in windows.items():
                window = self.tracker.window(key)
                for sample_time, value in samples:
                    window.record(sample_time, float_from_wire(value))
        return self

    def _note_mutation(self) -> None:
        """Release stale cache entries for the about-to-mutate population.

        The engine's own published snapshot is dropped under its remembered
        key — O(1), no scan.  Entries some *external* caller packed for the
        live population (``evaluate_set(engine.live_offers())``) are keyed
        on content and can never serve a wrong result, so dropping them is
        memory hygiene; the generation check keeps that O(1) unless
        something was actually cached since the previous mutation.  The
        packed state itself is no longer discarded at all — the live matrix
        is maintained through the mutation in O(Δ).
        """
        # The memoised snapshot describes the pre-mutation population even
        # when it was never cache-seeded (cache disabled, bypass window, or
        # over the cell budget), so it is dropped unconditionally.
        self._published = None
        if self._published_key is not None:
            self._cache.discard_key(self._published_key)
            self._published_key = None
        if self._cache.generation != self._cache_generation_seen:
            self._cache.discard(self.live_offers())
            self._cache_generation_seen = self._cache.generation

    def _apply_arrival(
        self,
        event: OfferArrived,
        cached: Optional[dict[str, float]] = None,
        sync_cache: bool = True,
    ) -> None:
        if sync_cache:
            self._note_mutation()
        flex_offer = event.flex_offer
        cell = self._index.insert(event.offer_id, flex_offer)
        aggregate = self._aggregates.get(cell)
        if aggregate is None:
            aggregate = self._aggregates[cell] = IncrementalAggregate()
        aggregate.add(event.offer_id, flex_offer)
        if cached is None:
            cached = {
                measure.key: measure.value(flex_offer)
                for measure in self.measures
                if measure.supports(flex_offer)
            }
        unsupported = tuple(
            measure.key for measure in self.measures if measure.key not in cached
        )
        for key in unsupported:
            self._unsupported_counts[key] += 1
        self._values[event.offer_id] = cached
        self._unsupported[event.offer_id] = unsupported
        if self._live is not None:
            try:
                self._live.append(event.offer_id, flex_offer, cached)
            except OverflowError:
                # Unpackable magnitudes: drop the columnar fast path and
                # serve everything from the per-offer dicts from here on.
                self._live = None
        if self.auto_expire:
            heapq.heappush(
                self._deadlines, (flex_offer.latest_start, event.offer_id)
            )
        self.stats.arrived += 1
        if self.on_arrived is not None:
            self.on_arrived(event.offer_id, flex_offer, event)

    def _evict(self, offer_id: str) -> FlexOffer:
        """Shared removal path of expiry and assignment."""
        self._note_mutation()
        cell, flex_offer = self._index.evict(offer_id)
        aggregate = self._aggregates[cell]
        aggregate.remove(offer_id)
        if not len(aggregate):
            del self._aggregates[cell]
        del self._values[offer_id]
        for key in self._unsupported.pop(offer_id):
            self._unsupported_counts[key] -= 1
        if self._live is not None:
            self._live.remove(offer_id)
        elif not len(self._index):
            # The population emptied while degraded: re-arm the packed
            # fast path for whatever arrives next.
            self._live = self._new_live()
        return flex_offer

    def _apply_expiry(self, event: OfferExpired) -> None:
        flex_offer = self._evict(event.offer_id)
        self.stats.expired += 1
        if self.on_expired is not None:
            self.on_expired(event.offer_id, flex_offer, event)

    def _apply_assignment(self, event: OfferAssigned) -> None:
        flex_offer = self._evict(event.offer_id)
        self.stats.assigned += 1
        if event.price is not None:
            self.stats.revenue += event.price
        if self.on_assigned is not None:
            self.on_assigned(event.offer_id, flex_offer, event)

    def _apply_tick(self, event: Tick) -> None:
        if self.time is not None and event.time < self.time:
            raise StreamError(
                f"time must be non-decreasing: tick {event.time} after {self.time}"
            )
        self.time = event.time
        self.stats.ticks += 1
        if self.auto_expire:
            self._expire_lapsed(event)
        if self.tracker is not None:
            self.tracker.sample(event.time, self._sample_values())

    def _expire_lapsed(self, event: Tick) -> None:
        """Expire every live offer whose start window lapsed before ``event.time``."""
        while self._deadlines and self._deadlines[0][0] < event.time:
            deadline, offer_id = heapq.heappop(self._deadlines)
            if offer_id not in self._index:
                continue  # already assigned or explicitly expired
            if self._index.get(offer_id).latest_start != deadline:
                continue  # stale entry: the id was reused by a later arrival
            flex_offer = self._evict(offer_id)
            self.stats.expired += 1
            if self.on_expired is not None:
                self.on_expired(offer_id, flex_offer, event)

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of live flex-offers."""
        return len(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, offer_id: str) -> bool:
        return offer_id in self._index

    def live_ids(self) -> list[str]:
        """Ids of the live offers, in arrival order."""
        return list(self._index)

    def live_offers(self) -> list[FlexOffer]:
        """The surviving flex-offers in arrival order.

        This is exactly the population the batch pipeline would be run on —
        the equivalence tests feed it straight into ``group_by_grid`` /
        ``evaluate_set``.
        """
        return [self._index.get(offer_id) for offer_id in self._index]

    def groups(self) -> list[list[FlexOffer]]:
        """The grid grouping of the live population (``group_by_grid`` shape).

        The same groups :meth:`snapshot` reports, exposed directly so
        callers (the service façade's aggregate requests) need not pay for
        a full snapshot's report.
        """
        return [list(group) for group in self._index.groups()]

    def _measure_values_list(self, measure: FlexibilityMeasure) -> list:
        """Per-offer values of one (fully supported) measure, arrival order.

        The fast path gathers the measure's packed value column from the
        live state — no per-offer dictionary lookups; the fallback (NumPy
        missing, an unpackable offer, or a column whose float64 image could
        diverge from the Python values) rebuilds the list from the arrival
        caches.  Both produce the same values in the same order, so the
        downstream ``combine_values`` result is identical either way.
        """
        if self._live is not None:
            folded = self._live.fold(measure.key)
            if folded is not None:
                return folded
        return [
            self._values[offer_id][measure.key] for offer_id in self._index
        ]

    def _combined_values(
        self, keys: Optional[set] = None
    ) -> tuple[dict[str, float], list[str]]:
        """``(values, skipped)`` of the live population, batch-identical.

        Per-offer values were cached on arrival; only the O(population)
        combination step runs here, in arrival order, so the result equals
        ``evaluate_set(self.live_offers(), self.measures)`` exactly.  All
        eligible measures fold in **one bulk pass** over the packed value
        columns (:meth:`~repro.stream.live.LivePopulation.combined_values`
        — one alive-mask gather, one ``cumsum`` per column); measures the
        bulk pass cannot serve exactly fall back to the per-measure scalar
        fold, so the floats never depend on which path ran.  ``keys``
        restricts the computation to a subset of the configured measures
        (tick sampling computes the tracked measures only).
        """
        values: dict[str, float] = {}
        skipped: list[str] = []
        pending: list[FlexibilityMeasure] = []
        for measure in self.measures:
            if keys is not None and measure.key not in keys:
                continue
            if self._unsupported_counts[measure.key]:
                skipped.append(measure.key)
                continue
            pending.append(measure)
        bulk = self._live.combined_values(pending) if self._live else {}
        for measure in pending:
            if measure.key in bulk:
                values[measure.key] = bulk[measure.key]
            else:
                values[measure.key] = measure.combine_values(
                    self._measure_values_list(measure)
                )
        return values, skipped

    def _population_values(self) -> tuple[dict[str, float], list[str]]:
        """``(values, skipped)`` for the full report (every measure)."""
        return self._combined_values()

    def _sample_values(self) -> dict[str, float]:
        """Set values of the *tracked* measures only (tick sampling).

        Computes just what the tracker retains, straight from the packed
        value columns — never the full report dictionary.  Measures that do
        not support the whole population are omitted, exactly as the
        tracker would have skipped them out of a report.
        """
        assert self.tracker is not None
        values, _ = self._combined_values(set(self.tracker.measure_keys))
        return values

    def report(self) -> FlexibilitySetReport:
        """Set-wise flexibility of the live population under every measure."""
        values, skipped = self._population_values()
        return FlexibilitySetReport(self.size, values, tuple(skipped))

    def live_matrix(self):
        """The packed matrix of the live population, published to the cache.

        Returns the incrementally maintained
        :class:`~repro.backend.matrix.ProfileMatrix` as a frozen snapshot —
        bit-identical to a fresh pack of :meth:`live_offers` — and seeds it
        into the :data:`~repro.backend.cache.matrix_cache`, so any
        subsequent backend bulk call on the live population (an external
        ``evaluate_set``, the sharded backend's per-shard slicing) hits the
        cache instead of re-packing.  The snapshot stays valid until the
        next population mutation, which drops the seeded entry in O(1).
        Returns ``None`` when the packed fast path is unavailable (NumPy
        missing or an unpackable offer arrived).
        """
        if self._live is None:
            return None
        if self._published is None:
            snapshot = self._live.population_matrix().snapshot()
            key = self._cache.key_of(snapshot.offers)
            weight = int(snapshot.offsets[-1]) if snapshot.size else 0
            if self._cache.put(key, snapshot, weight=weight):
                self._published_key = key
                self._cache_generation_seen = self._cache.generation
            self._published = snapshot
        return self._published

    def aggregates(self, prefix: str = "aggregate") -> list[AggregatedFlexOffer]:
        """One aggregate per live group, equal to the batch ``aggregate_all``.

        Groups that cover a whole grid cell are materialised from their
        incrementally maintained :class:`IncrementalAggregate`; chunks of an
        oversized cell are aggregated through the batch path (chunk
        boundaries shift on every eviction, so there is no incremental
        state worth keeping for them).  The chunking itself lives solely in
        :meth:`OnlineGridIndex.group_items`, shared with :meth:`snapshot`.
        """
        aggregates: list[AggregatedFlexOffer] = []
        for index, items in enumerate(self._index.group_items()):
            first_id = items[0][0]
            cell_aggregate = self._aggregates[self._index.cell_of(first_id)]
            if len(items) == len(cell_aggregate):
                aggregates.append(cell_aggregate.aggregated(name=f"{prefix}-{index}"))
            else:
                aggregates.append(
                    aggregate_start_aligned(
                        [flex_offer for _, flex_offer in items],
                        name=f"{prefix}-{index}",
                    )
                )
        return aggregates

    def snapshot(self, prefix: str = "aggregate") -> EngineSnapshot:
        """A consistent batch-equivalent view of the current state.

        Publishes the live packed matrix to the matrix cache first (when
        available), so batch analyses run on ``snapshot.live`` afterwards
        skip the packing pass entirely.
        """
        self.live_matrix()
        groups = tuple(tuple(group) for group in self._index.groups())
        return EngineSnapshot(
            time=self.time,
            live=tuple(self.live_offers()),
            groups=groups,
            aggregates=tuple(self.aggregates(prefix)),
            report=self.report(),
            stats=EngineStats(**self.stats.as_dict()),
            window_summary=self.tracker.summary() if self.tracker else {},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingEngine({self.size} live, {self._index.cell_count} cells, "
            f"{self.stats.events} events)"
        )
