"""Online grid index: incremental grouping of live flex-offers.

The batch pipeline buckets a whole population onto the two-dimensional
``(tes, tf)`` grid in one pass (:func:`repro.aggregation.group_by_grid`).
The online index maintains the same buckets under a stream of arrivals and
evictions with O(1) work per event: each live offer sits in exactly one grid
cell (computed with the *same* :func:`repro.aggregation.grouping.grid_key`
the batch path uses), and each cell keeps its members in arrival order —
Python dictionaries preserve insertion order under deletion, which is
precisely the "surviving offers in original order" semantics the batch
equivalence guarantee needs.

``max_group_size`` chunking is applied lazily at snapshot time (it is a view
concern, not a state concern): re-chunking on every eviction would turn O(1)
maintenance into O(cell size) for no benefit.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..aggregation.grouping import GroupingParameters, grid_key
from ..core.flexoffer import FlexOffer
from .events import StreamError

__all__ = ["OnlineGridIndex"]

CellKey = tuple[int, int]


class OnlineGridIndex:
    """Incremental ``(tes, tf)`` grid over the live flex-offer population.

    Parameters
    ----------
    parameters:
        The same grouping tolerances the batch :func:`group_by_grid` takes;
        snapshots of the index are guaranteed to equal the batch grouping of
        the surviving offers (in arrival order).
    """

    def __init__(self, parameters: GroupingParameters = GroupingParameters()) -> None:
        self.parameters = parameters
        self._cells: dict[CellKey, dict[str, FlexOffer]] = {}
        self._locations: dict[str, CellKey] = {}

    # ------------------------------------------------------------------ #
    # Maintenance (O(1) per event)
    # ------------------------------------------------------------------ #
    def insert(self, offer_id: str, flex_offer: FlexOffer) -> CellKey:
        """Insert a live offer; returns the grid cell it landed in."""
        if offer_id in self._locations:
            raise StreamError(f"offer {offer_id!r} is already in the index")
        key = grid_key(flex_offer, self.parameters)
        self._cells.setdefault(key, {})[offer_id] = flex_offer
        self._locations[offer_id] = key
        return key

    def evict(self, offer_id: str) -> tuple[CellKey, FlexOffer]:
        """Remove an offer; returns ``(cell, offer)``.  Empty cells are dropped."""
        try:
            key = self._locations.pop(offer_id)
        except KeyError:
            raise StreamError(f"offer {offer_id!r} is not in the index") from None
        cell = self._cells[key]
        flex_offer = cell.pop(offer_id)
        if not cell:
            del self._cells[key]
        return key, flex_offer

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def get(self, offer_id: str) -> FlexOffer:
        """The live offer with the given id."""
        try:
            return self._cells[self._locations[offer_id]][offer_id]
        except KeyError:
            raise StreamError(f"offer {offer_id!r} is not in the index") from None

    def cell_of(self, offer_id: str) -> CellKey:
        """The grid cell the offer currently sits in."""
        try:
            return self._locations[offer_id]
        except KeyError:
            raise StreamError(f"offer {offer_id!r} is not in the index") from None

    def cell_members(self, key: CellKey) -> list[tuple[str, FlexOffer]]:
        """``(offer_id, offer)`` pairs of one cell, in arrival order."""
        return list(self._cells.get(key, {}).items())

    def cell_keys(self) -> list[CellKey]:
        """All non-empty cells, in the sorted order the batch grouping uses."""
        return sorted(self._cells)

    def __contains__(self, offer_id: str) -> bool:
        return offer_id in self._locations

    def __len__(self) -> int:
        return len(self._locations)

    def __iter__(self) -> Iterator[str]:
        return iter(self._locations)

    @property
    def cell_count(self) -> int:
        """Number of non-empty grid cells."""
        return len(self._cells)

    # ------------------------------------------------------------------ #
    # Snapshots (batch-equivalent views)
    # ------------------------------------------------------------------ #
    def group_items(self) -> list[list[tuple[str, FlexOffer]]]:
        """The live groups as ``(offer_id, offer)`` lists.

        Cells are emitted in sorted key order and chunked by
        ``max_group_size`` exactly like :func:`group_by_grid`, so stripping
        the ids yields the batch grouping of the surviving offers.
        """
        size = self.parameters.max_group_size
        groups: list[list[tuple[str, FlexOffer]]] = []
        for key in sorted(self._cells):
            members = list(self._cells[key].items())
            if size and len(members) > size:
                for start in range(0, len(members), size):
                    groups.append(members[start:start + size])
            else:
                groups.append(members)
        return groups

    def groups(self) -> list[list[FlexOffer]]:
        """The live groups as plain flex-offer lists (batch-identical)."""
        return [
            [flex_offer for _, flex_offer in group] for group in self.group_items()
        ]
