"""Incrementally maintained packed state of the live population.

:class:`LivePopulation` is the streaming engine's columnar shadow of its
per-offer dictionaries: one live
:class:`~repro.backend.matrix.ProfileMatrix` over the surviving offers plus
a row-aligned ``float64`` column per configured measure.  Arrivals append
in amortized O(Δ), evictions tombstone in O(1), and compaction (triggered
by the matrix's tombstone-ratio threshold, ``REPRO_MATRIX_COMPACT``) keeps
both structures aligned through the same surviving-row gather — so after
any event interleaving the packed matrix is bit-identical to a fresh pack
of the survivors, without the O(population) re-pack the engine used to pay
on every mutation.

The value columns make the engine's per-tick folds vectorized: instead of
rebuilding a Python list out of ``{offer_id: {measure: value}}`` dictionary
lookups, a fold gathers the alive rows of one column and hands the same
values, in the same arrival order, to the measure's ``combine_values``
hook.  Exactness is preserved by construction — the fold refuses (returns
``None``, sending the engine down its dictionary path) whenever the
``float64`` column could disagree with the original Python values: a value
that does not round-trip through ``float64``, an int too large for the
``int64`` gather, or a measure that produced both int- and float-typed
values (whose sequential sum could round differently).

This module imports NumPy (via the packed matrix) at module level; the
engine imports it lazily and simply runs without the columnar fast path
when the import fails.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend.matrix import ProfileMatrix
from ..core.flexoffer import FlexOffer

__all__ = ["LivePopulation"]

#: Ints beyond this cannot be gathered through the ``int64`` column path
#: even when their ``float64`` image is exact (powers of two past 2^62).
_INT64_SAFE = 1 << 62


class LivePopulation:
    """Live matrix plus measure value columns, row-aligned and O(Δ)."""

    def __init__(
        self,
        measure_keys: list[str],
        compact_threshold: Optional[float] = None,
    ) -> None:
        self.matrix = ProfileMatrix([], compact_threshold=compact_threshold)
        self._keys = list(measure_keys)
        self._column_of = {key: index for index, key in enumerate(self._keys)}
        width = len(self._keys)
        self._values = np.zeros((0, width), dtype=np.float64)
        self._ids: list[str] = []
        self._rows: dict[str, int] = {}
        # Sticky per-measure exactness bookkeeping (reset only with the
        # population): the fold may only serve a column whose float64 image
        # provably reproduces the dictionary path's Python values.
        self._saw_int = [False] * width
        self._saw_float = [False] * width
        self._inexact = [False] * width
        # Largest |value| ever stored per integer column: bounds the exact
        # range of an ``int64`` column sum (``max_abs * rows < 2^62`` ⇒ no
        # overflow), letting ``combined_values`` fold integer columns
        # without arbitrary-precision arithmetic.
        self._int_max_abs = [0.0] * width

    def __len__(self) -> int:
        """Number of surviving offers."""
        return self.matrix.live_count

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def append(
        self, offer_id: str, flex_offer: FlexOffer, values: dict[str, float]
    ) -> None:
        """Add one arrival: a matrix row plus its measure values.

        ``values`` holds the measure values of the supporting measures only
        (the engine's arrival cache).  Raises ``OverflowError`` — with no
        state change — when the offer is not packable; the engine then
        degrades to its dictionary-only path.
        """
        self.matrix.append([flex_offer])  # validates before writing
        row = len(self._ids)
        if row == len(self._values):
            grown = np.zeros(
                (max(2 * row, 8), len(self._keys)), dtype=np.float64
            )
            grown[:row] = self._values[:row]
            self._values = grown
        for key, value in values.items():
            column = self._column_of.get(key)
            if column is None:
                continue
            self._note_value(column, value)
            try:
                self._values[row, column] = float(value)
            except OverflowError:  # int too large for float64
                self._inexact[column] = True
                self._values[row, column] = 0.0
        self._ids.append(offer_id)
        self._rows[offer_id] = row

    def _note_value(self, column: int, value) -> None:
        """Track whether the column still reproduces the Python values."""
        if type(value) is int:
            self._saw_int[column] = True
            # Bounds first: float() on an unbounded int could itself
            # overflow, while anything within ±2^62 converts safely.
            if not -_INT64_SAFE <= value <= _INT64_SAFE:
                self._inexact[column] = True
            else:
                if float(value) != value:
                    self._inexact[column] = True
                magnitude = float(-value if value < 0 else value)
                if magnitude > self._int_max_abs[column]:
                    self._int_max_abs[column] = magnitude
        elif type(value) is float:
            self._saw_float[column] = True
            if value != value:  # NaN never equals itself
                self._inexact[column] = True
        else:
            self._inexact[column] = True

    def remove(self, offer_id: str) -> None:
        """Tombstone one offer's row; compacts past the matrix threshold."""
        row = self._rows.pop(offer_id)
        self._ids[row] = ""
        kept = self.matrix.tombstone([row])
        if kept is not None:
            self._apply_compaction(kept)

    def _apply_compaction(self, kept: np.ndarray) -> None:
        """Re-align the columns and id map after a matrix compaction."""
        count = len(self._ids)
        self._values = self._values[:count][kept]
        self._ids = [self._ids[int(index)] for index in kept]
        self._rows = {offer_id: row for row, offer_id in enumerate(self._ids)}

    def population_matrix(self) -> ProfileMatrix:
        """The packed matrix of the survivors (compacted on demand)."""
        if self.matrix.dead_count:
            self._apply_compaction(self.matrix.compact())
        return self.matrix

    # ------------------------------------------------------------------ #
    # Folds
    # ------------------------------------------------------------------ #
    def fold(self, measure_key: str) -> Optional[list]:
        """The surviving offers' values of one measure, arrival order.

        Returns ``None`` when the column cannot reproduce the dictionary
        path exactly (see the class docstring) — callers fall back to the
        per-offer dictionaries.  Only valid for measures that support every
        survivor; the engine checks its unsupported counters first.
        """
        column = self._column_of[measure_key]
        if self._inexact[column]:
            return None
        integral = self._saw_int[column]
        if integral and self._saw_float[column]:
            return None
        count = len(self._ids)
        gathered = self._values[:count, column][self.matrix.alive]
        if integral:
            return gathered.astype(np.int64).tolist()
        return gathered.tolist()

    def combined_values(self, measures) -> dict[str, float]:
        """Exact set values of many measures in one pass over the columns.

        The vectorized form of ``measure.combine_values(fold(key))`` for
        every measure at once: the alive mask is gathered a single time,
        each eligible column is folded with one ``cumsum`` pass, and the
        results are bit-identical to the scalar fold — ``cumsum``
        accumulates strictly left to right in the same arrival order the
        dictionary path iterates, integer columns fold in exact ``int64``
        (guarded by the running ``max |value| * rows`` bound), and the
        sum/mean finalisation repeats the scalar expression.

        Measures the pass cannot serve exactly are simply absent from the
        returned dict — a measure with an overridden ``combine_values``
        (non-additive set semantics), an untracked key, an inexact or
        mixed int/float column, or an integer column whose sum could
        overflow ``int64`` — and the engine falls back to the per-measure
        scalar fold for those.
        """
        from ..measures.base import FlexibilityMeasure, SetAggregation

        combined: dict[str, float] = {}
        count = len(self._ids)
        alive = None
        dead = self.matrix.dead_count
        for measure in measures:
            if (
                type(measure).combine_values
                is not FlexibilityMeasure.combine_values
            ):
                continue
            column = self._column_of.get(measure.key)
            if column is None or self._inexact[column]:
                continue
            integral = self._saw_int[column]
            if integral and self._saw_float[column]:
                continue
            if dead:
                if alive is None:
                    alive = self.matrix.alive
                data = self._values[:count, column][alive]
            else:
                data = self._values[:count, column]
            size = int(data.size)
            if size == 0:
                combined[measure.key] = 0.0
                continue
            wants_mean = measure.set_aggregation is SetAggregation.MEAN
            if integral:
                if self._int_max_abs[column] * size >= float(_INT64_SAFE):
                    continue
                total = int(np.cumsum(data.astype(np.int64))[-1])
            else:
                total = np.cumsum(data)[-1]
            combined[measure.key] = (
                float(total / size) if wants_mean else float(total)
            )
        return combined

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LivePopulation({self.matrix.live_count} live rows, "
            f"{len(self._keys)} measure columns)"
        )
