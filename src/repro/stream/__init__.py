"""``repro.stream`` — the streaming flexibility engine.

The rest of the library is batch-oriented: ``group_by_grid`` partitions a
static population, ``aggregate_start_aligned`` builds each aggregate from
scratch, and ``evaluate_set`` re-evaluates every measure on every call.
Real flex-offer traffic is a *stream* — offers arrive from prosumer devices,
lapse unused, or get committed by schedulers and market clearings — and
recomputing the batch pipeline per event costs O(population) work for an
O(1)-sized change.  This subsystem maintains the same state incrementally:

``events``
    The typed event model (:class:`OfferArrived`, :class:`OfferExpired`,
    :class:`OfferAssigned`, :class:`Tick`) and the append-only
    :class:`EventLog` with monotonic sequence numbers.
``grouping``
    :class:`OnlineGridIndex` — the live population bucketed on the same
    ``(tes, tf)`` grid the batch grouping uses, O(1) per insert/evict.
``aggregate``
    :class:`IncrementalAggregate` — a start-aligned aggregate maintained
    under member add/remove via sparse column sums and lazily repaired
    running extremes.
``window``
    :class:`RingBuffer`, :class:`MeasureWindow`, :class:`WindowTracker` —
    sliding-window statistics (total / mean / percentile) of population
    level measure values sampled on every tick.
``windowkernels``
    :class:`ArrayMeasureWindow` — the NumPy ring-buffer window kernel,
    conformance-pinned to the scalar :class:`MeasureWindow` and selected
    per session through the compute-backend contract (or the
    ``REPRO_WINDOW_KERNEL`` knob).  Imported lazily: ``repro.stream``
    itself stays importable without NumPy.
``engine``
    :class:`StreamingEngine` — the orchestrator consuming events and
    exposing batch-equivalent snapshots (:class:`EngineSnapshot`).
``replay``
    Adapters turning existing populations, scenarios and market sessions
    into event streams (:func:`population_events`, :func:`churn_events`,
    :func:`market_events`).

The load-bearing invariant, enforced by the unit and property tests: after
*any* event stream, ``engine.snapshot()`` equals the batch
``group_by_grid`` → ``aggregate_all`` → ``evaluate_set`` pipeline applied to
the surviving offers in arrival order.  The streaming path is a cache of the
batch path, never a reinterpretation of it.

>>> from repro.stream import StreamingEngine, population_events
>>> from repro.workloads import neighbourhood_scenario
>>> scenario = neighbourhood_scenario(households=4, seed=7, horizon=32)
>>> engine = StreamingEngine().replay(population_events(scenario.flex_offers))
>>> snapshot = engine.snapshot()
>>> snapshot.size == scenario.size
True
"""

from .aggregate import IncrementalAggregate
from .engine import EngineSnapshot, EngineStats, StreamingEngine
from .events import (
    EventLog,
    OfferArrived,
    OfferAssigned,
    OfferExpired,
    StreamError,
    StreamEvent,
    Tick,
)
from .grouping import OnlineGridIndex
from .replay import (
    churn_events,
    market_events,
    offer_identifier,
    population_events,
)
from .window import MeasureWindow, RingBuffer, WindowTracker


def __getattr__(name: str):
    # ``ArrayMeasureWindow`` imports NumPy at module level; exporting it
    # lazily keeps ``import repro.stream`` NumPy-free on hosts without it.
    if name == "ArrayMeasureWindow":
        from .windowkernels import ArrayMeasureWindow

        return ArrayMeasureWindow
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    # events
    "StreamError",
    "StreamEvent",
    "OfferArrived",
    "OfferExpired",
    "OfferAssigned",
    "Tick",
    "EventLog",
    # incremental state
    "OnlineGridIndex",
    "IncrementalAggregate",
    # windows
    "RingBuffer",
    "MeasureWindow",
    "ArrayMeasureWindow",
    "WindowTracker",
    # engine
    "StreamingEngine",
    "EngineSnapshot",
    "EngineStats",
    # replay adapters
    "offer_identifier",
    "population_events",
    "churn_events",
    "market_events",
]
