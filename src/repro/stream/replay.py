"""Adapters that turn existing batch scenarios into event streams.

Every workload the library already ships — synthetic populations from
:mod:`repro.workloads.generator`, the named scenarios, market clearing
rounds from :mod:`repro.market.trading` — is a *batch* artefact: a list of
flex-offers, or a list of accepted bids.  The streaming engine consumes
*events*, so this module provides the bridges:

* :func:`offer_identifier` / :func:`population_events` — deterministic ids
  and arrival streams for any flex-offer sequence (and therefore for any
  ``generate_population`` / scenario output);
* :func:`churn_events` — a reproducible arrival/expiry interleaving over a
  population, for soak tests and throughput benchmarks;
* :func:`market_events` — replays a :class:`~repro.market.trading.TradingSession`
  clearing round as arrivals followed by :class:`OfferAssigned` events (with
  clearing prices) for the accepted lots.

The old ``replay_population`` one-call convenience (build an engine,
stream a population, return it) was removed in v2.0: use
:meth:`repro.service.FlexSession.ingest`, or feed
:func:`population_events` to an explicit :class:`StreamingEngine`.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Union

from ..aggregation.base import AggregatedFlexOffer
from ..core.flexoffer import FlexOffer
from ..market.trading import TradingSession
from .events import EventLog, OfferArrived, OfferAssigned, OfferExpired, StreamError, Tick

__all__ = [
    "offer_identifier",
    "population_events",
    "churn_events",
    "market_events",
]


def offer_identifier(flex_offer: FlexOffer, index: int) -> str:
    """A stable, unique id for the ``index``-th offer of a batch population.

    The position makes the id unique even when a population contains
    structurally identical offers; the fingerprint ties it to the offer's
    shape so mismatched (id, offer) pairs are easy to spot in logs.
    """
    return f"offer-{index:06d}-{flex_offer.fingerprint:016x}"


def population_events(
    flex_offers: Sequence[FlexOffer], start_index: int = 0
) -> EventLog:
    """An arrival-only event stream for a batch population.

    Replaying this log through a fresh engine and snapshotting reproduces
    the batch pipeline on ``flex_offers`` exactly — the simplest form of the
    batch-equivalence guarantee.
    """
    log = EventLog()
    for offset, flex_offer in enumerate(flex_offers):
        log.append(
            OfferArrived(offer_identifier(flex_offer, start_index + offset), flex_offer)
        )
    return log


def churn_events(
    flex_offers: Sequence[FlexOffer],
    survive_fraction: float = 0.5,
    seed: int = 0,
    tick_every: int = 0,
) -> EventLog:
    """A reproducible arrival/expiry interleaving over a population.

    Each offer arrives once (population order); a seeded random subset of
    ``1 - survive_fraction`` of them later expires, each expiry woven in at
    a random point after its arrival.  With ``tick_every > 0`` a
    :class:`Tick` is emitted every that-many events (time = event index),
    driving window sampling during the replay.

    The survivors of the stream are exactly the offers without an expiry
    event, so the batch reference for equivalence checks is trivially
    recoverable from the log itself.
    """
    if not 0.0 <= survive_fraction <= 1.0:
        raise StreamError(
            f"survive_fraction must be in [0, 1], got {survive_fraction}"
        )
    rng = random.Random(seed)
    horizon = float(len(flex_offers))
    # Weave by priority: arrival ``i`` gets priority ``i``; its expiry (if
    # any) a priority drawn uniformly from ``[i, horizon]`` with a tiebreak
    # that sorts it strictly after the arrival.  Sorting then yields a
    # random legal interleaving (every expiry after its own arrival).
    weave: list[tuple[float, int, Union[OfferArrived, OfferExpired]]] = []
    for index, flex_offer in enumerate(flex_offers):
        offer_id = offer_identifier(flex_offer, index)
        weave.append((float(index), 0, OfferArrived(offer_id, flex_offer)))
        if rng.random() >= survive_fraction:
            weave.append((rng.uniform(index, horizon), 1, OfferExpired(offer_id)))
    weave.sort(key=lambda entry: (entry[0], entry[1]))
    log = EventLog()
    for index, (_, _, event) in enumerate(weave):
        if tick_every and index and index % tick_every == 0:
            log.append(Tick(index))
        log.append(event)
    return log


def market_events(
    session: TradingSession,
    lots: Sequence[Union[FlexOffer, AggregatedFlexOffer]],
    start_index: int = 0,
) -> EventLog:
    """Replay one market clearing round as an event stream.

    Every lot arrives (aggregates are unwrapped to their aggregate
    flex-offer, exactly as :meth:`TradingSession.offer_lots` does), the
    session clears, and each *accepted* bid becomes an
    :class:`OfferAssigned` carrying its clearing price.  Rejected lots stay
    live — they remain the Aggregator's to re-offer in the next round.
    """
    flex_offers = [
        lot.flex_offer if isinstance(lot, AggregatedFlexOffer) else lot for lot in lots
    ]
    # Ids are positional (a lot list may contain the same object twice);
    # bids are mapped back by consuming positions per object identity.
    pending: dict[int, list[str]] = {}
    log = EventLog()
    for offset, flex_offer in enumerate(flex_offers):
        offer_id = offer_identifier(flex_offer, start_index + offset)
        pending.setdefault(id(flex_offer), []).append(offer_id)
        log.append(OfferArrived(offer_id, flex_offer))
    accepted, _rejected = session.clear(lots)
    for bid in accepted:
        log.append(
            OfferAssigned(
                pending[id(bid.flex_offer)].pop(0), price=bid.total_price
            )
        )
    return log
