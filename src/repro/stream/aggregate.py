"""Incrementally maintained start-aligned aggregates.

The batch :func:`repro.aggregation.aggregate_start_aligned` rebuilds the
whole aligned profile from scratch on every call.  For a streaming group
that gains and loses one member at a time this is wasteful: almost all of
the aggregate's state is a collection of *sums* (per-column energy ranges,
total constraints) and *extremes* (anchor ``min tes``, common ``min tf``,
horizon ``max (tes + duration)``), and sums are trivially maintainable under
both add and remove.

:class:`IncrementalAggregate` therefore keeps

* a packed, offset-indexed column store ``absolute time → (Σ amin, Σ amax,
  cover count)`` over the members' *effective* slice bounds (the same
  bounds the batch path sums), updated in O(duration) per membership
  change.  With NumPy present the columns are contiguous ``int64`` arrays
  indexed by ``time - base`` — adds and removes are vectorized slice
  updates, and materialisation gathers whole ranges instead of probing a
  dict per time unit.  The store degrades to the original sparse dict —
  with identical integer results — when NumPy is missing, when a member
  carries bounds beyond ``±2^31`` (headroom for exact ``int64`` sums), or
  when the members' time span would need an unreasonable array
  (:data:`_SPAN_LIMIT` columns);
* running totals of ``cmin``/``cmax`` (O(1) per change);
* running extremes for ``min tes``, ``min tf`` and ``max end``.  Adding a
  member can only tighten these monotonically (O(1)); removing the member
  that *attains* an extreme invalidates it, which is recorded with a dirty
  flag and repaired lazily — an O(group size) rebuild that only happens when
  the aggregate is next queried, not per event.

Materialising the aggregate (:meth:`flex_offer` / :meth:`aggregated`)
produces bit-for-bit the same :class:`~repro.aggregation.AggregatedFlexOffer`
the batch path builds for the same members in the same order: all sums are
integer arithmetic, so no floating-point drift can creep in.
"""

from __future__ import annotations

from typing import Optional

from ..aggregation.base import AggregatedFlexOffer
from ..core.errors import AggregationError
from ..core.flexoffer import FlexOffer
from ..core.slices import EnergySlice
from .events import StreamError

__all__ = ["IncrementalAggregate"]

#: Per-member bound magnitude the packed store accepts: ``int64`` column
#: sums stay exact for up to 2^31 members of bounds within ±2^31.
_BOUND_LIMIT = 1 << 31
#: Maximum columns (time units) the packed arrays may span; a cell whose
#: members are scattered further apart falls back to the sparse dict.
_SPAN_LIMIT = 1 << 20

#: Lazily probed NumPy module (``import repro`` must stay NumPy-free —
#: this module is imported eagerly by ``repro.stream``).
np = None
_numpy_probed = False


def _numpy():
    """NumPy, imported on the first :class:`_ColumnStore` construction."""
    global np, _numpy_probed
    if not _numpy_probed:
        _numpy_probed = True
        try:
            import numpy

            np = numpy
        except ImportError:  # pragma: no cover - exercised only without numpy
            np = None
    return np


class _ColumnStore:
    """Offset-indexed ``(Σ amin, Σ amax, cover)`` sums under add/remove.

    Two interchangeable representations with bit-identical integer
    results: packed ``int64`` arrays indexed by ``time - base`` (the
    default when NumPy is importable) and the original sparse
    ``{time: [Σ amin, Σ amax, cover]}`` dict.  The packed mode migrates to
    the dict — once, irreversibly for this store instance — when a member
    would violate the exactness guard (:data:`_BOUND_LIMIT`) or blow the
    span budget (:data:`_SPAN_LIMIT`); the aggregate builds a fresh store
    whenever it empties, re-arming the packed path.
    """

    __slots__ = ("_dict", "_base", "_amin", "_amax", "_cover")

    def __init__(self) -> None:
        self._dict: Optional[dict[int, list[int]]] = (
            {} if _numpy() is None else None
        )
        self._base = 0
        self._amin = self._amax = self._cover = None

    # -------------------------------------------------------------- #
    # Mode management
    # -------------------------------------------------------------- #
    def _to_dict(self) -> None:
        """Migrate the packed state into the sparse dict (one way)."""
        data: dict[int, list[int]] = {}
        if self._cover is not None:
            for index in np.flatnonzero(self._cover).tolist():
                data[self._base + index] = [
                    int(self._amin[index]),
                    int(self._amax[index]),
                    int(self._cover[index]),
                ]
        self._dict = data
        self._amin = self._amax = self._cover = None

    def _ensure_span(self, lo: int, hi: int) -> bool:
        """Grow the packed arrays to cover ``[lo, hi)``; ``False`` when the
        span budget forces the dict fallback instead."""
        if self._amin is None:
            span = hi - lo
            capacity = max(span, 16)
            self._base = lo
            self._amin = np.zeros(capacity, dtype=np.int64)
            self._amax = np.zeros(capacity, dtype=np.int64)
            self._cover = np.zeros(capacity, dtype=np.int64)
            return True
        current_lo = self._base
        current_hi = self._base + len(self._amin)
        if lo >= current_lo and hi <= current_hi:
            return True
        new_lo = min(lo, current_lo)
        new_hi = max(hi, current_hi)
        if new_hi - new_lo > _SPAN_LIMIT:
            self._to_dict()
            return False
        # Geometric growth with the slack split around the covered range,
        # so alternating left/right extensions stay amortized O(1).
        capacity = max(new_hi - new_lo, 2 * len(self._amin))
        slack = capacity - (new_hi - new_lo)
        base = new_lo - (slack // 2 if lo < current_lo else 0)
        offset = current_lo - base
        for name in ("_amin", "_amax", "_cover"):
            grown = np.zeros(capacity, dtype=np.int64)
            old = getattr(self, name)
            grown[offset : offset + len(old)] = old
            setattr(self, name, grown)
        self._base = base
        return True

    # -------------------------------------------------------------- #
    # Mutation
    # -------------------------------------------------------------- #
    def add(self, start: int, bounds) -> None:
        """Fold one member's effective slice bounds in, O(duration)."""
        amins = [bound.amin for bound in bounds]
        amaxs = [bound.amax for bound in bounds]
        if self._dict is None:
            if amins and (
                max(max(amins), max(amaxs), -min(amins), -min(amaxs))
                > _BOUND_LIMIT
            ):
                self._to_dict()
            elif not self._ensure_span(start, start + len(amins)):
                pass  # _ensure_span migrated to the dict
        if self._dict is not None:
            for index, (amin, amax) in enumerate(zip(amins, amaxs)):
                column = self._dict.setdefault(start + index, [0, 0, 0])
                column[0] += amin
                column[1] += amax
                column[2] += 1
            return
        lo = start - self._base
        hi = lo + len(amins)
        self._amin[lo:hi] += amins
        self._amax[lo:hi] += amaxs
        self._cover[lo:hi] += 1

    def remove(self, start: int, bounds) -> None:
        """Fold one member's effective slice bounds out, O(duration)."""
        amins = [bound.amin for bound in bounds]
        amaxs = [bound.amax for bound in bounds]
        if self._dict is not None:
            for index, (amin, amax) in enumerate(zip(amins, amaxs)):
                column = self._dict[start + index]
                column[0] -= amin
                column[1] -= amax
                column[2] -= 1
                if column[2] == 0:
                    del self._dict[start + index]
            return
        lo = start - self._base
        hi = lo + len(amins)
        self._amin[lo:hi] -= amins
        self._amax[lo:hi] -= amaxs
        self._cover[lo:hi] -= 1

    # -------------------------------------------------------------- #
    # Materialisation
    # -------------------------------------------------------------- #
    def materialise(self, anchor: int, horizon: int) -> list[EnergySlice]:
        """The summed slices over ``[anchor, horizon)``, uncovered = (0, 0)."""
        count = horizon - anchor
        if self._dict is not None:
            slices = []
            for time in range(anchor, horizon):
                column = self._dict.get(time)
                if column is None:
                    slices.append(EnergySlice(0, 0))
                else:
                    slices.append(EnergySlice(column[0], column[1]))
            return slices
        amins = [0] * count
        amaxs = [0] * count
        if self._amin is not None:
            lo = max(anchor, self._base)
            hi = min(horizon, self._base + len(self._amin))
            if hi > lo:
                source_lo = lo - self._base
                source_hi = hi - self._base
                out_lo = lo - anchor
                # ``.tolist()`` yields Python ints, keeping EnergySlice
                # construction identical to the dict path.
                amins[out_lo : out_lo + (hi - lo)] = self._amin[
                    source_lo:source_hi
                ].tolist()
                amaxs[out_lo : out_lo + (hi - lo)] = self._amax[
                    source_lo:source_hi
                ].tolist()
        return [EnergySlice(amin, amax) for amin, amax in zip(amins, amaxs)]

    @property
    def packed(self) -> bool:
        """Whether the store is still in packed-array mode (observability)."""
        return self._dict is None


class IncrementalAggregate:
    """A start-aligned aggregate maintained under member add/remove."""

    def __init__(self) -> None:
        self._members: dict[str, FlexOffer] = {}
        #: Packed (Σ amin, Σ amax, cover) column sums over absolute time.
        self._columns = _ColumnStore()
        self._total_min = 0
        self._total_max = 0
        self._min_tes: Optional[int] = None
        self._min_tf: Optional[int] = None
        self._max_end: Optional[int] = None
        self._extremes_dirty = False
        #: Number of lazy extreme rebuilds performed (observability hook).
        self.rebuilds = 0

    # ------------------------------------------------------------------ #
    # Membership maintenance
    # ------------------------------------------------------------------ #
    def add(self, offer_id: str, flex_offer: FlexOffer) -> None:
        """Add a member in O(duration)."""
        if offer_id in self._members:
            raise StreamError(f"offer {offer_id!r} is already aggregated")
        self._members[offer_id] = flex_offer
        self._columns.add(
            flex_offer.earliest_start, flex_offer.effective_slice_bounds()
        )
        self._total_min += flex_offer.cmin
        self._total_max += flex_offer.cmax
        if not self._extremes_dirty:
            # Adding can only move the extremes monotonically.
            tes = flex_offer.earliest_start
            if self._min_tes is None or tes < self._min_tes:
                self._min_tes = tes
            tf = flex_offer.time_flexibility
            if self._min_tf is None or tf < self._min_tf:
                self._min_tf = tf
            end = flex_offer.earliest_end
            if self._max_end is None or end > self._max_end:
                self._max_end = end

    def remove(self, offer_id: str) -> FlexOffer:
        """Remove a member in O(duration); may mark the extremes dirty."""
        try:
            flex_offer = self._members.pop(offer_id)
        except KeyError:
            raise StreamError(f"offer {offer_id!r} is not aggregated here") from None
        self._columns.remove(
            flex_offer.earliest_start, flex_offer.effective_slice_bounds()
        )
        self._total_min -= flex_offer.cmin
        self._total_max -= flex_offer.cmax
        if not self._members:
            self._min_tes = self._min_tf = self._max_end = None
            self._extremes_dirty = False
            # A fresh store releases the packed arrays and re-arms the
            # packed mode after a dict fallback.
            self._columns = _ColumnStore()
        elif not self._extremes_dirty and (
            flex_offer.earliest_start == self._min_tes
            or flex_offer.time_flexibility == self._min_tf
            or flex_offer.earliest_end == self._max_end
        ):
            # The departing member attained a running extreme: the cheap
            # monotone update is no longer sound, repair lazily on demand.
            self._extremes_dirty = True
        return flex_offer

    def _refresh_extremes(self) -> None:
        if not self._extremes_dirty:
            return
        members = self._members.values()
        self._min_tes = min(member.earliest_start for member in members)
        self._min_tf = min(member.time_flexibility for member in members)
        self._max_end = max(member.earliest_end for member in members)
        self._extremes_dirty = False
        self.rebuilds += 1

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of member flex-offers."""
        return len(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, offer_id: str) -> bool:
        return offer_id in self._members

    def member_ids(self) -> list[str]:
        """Member ids in arrival order."""
        return list(self._members)

    def members(self) -> list[FlexOffer]:
        """Member flex-offers in arrival order."""
        return list(self._members.values())

    @property
    def anchor(self) -> int:
        """The aggregate's earliest start (``min tes`` over members)."""
        if not self._members:
            raise AggregationError("an empty aggregate has no anchor")
        self._refresh_extremes()
        return self._min_tes  # type: ignore[return-value]

    @property
    def time_flexibility(self) -> int:
        """The aggregate's time flexibility (``min tf`` over members)."""
        if not self._members:
            raise AggregationError("an empty aggregate has no time flexibility")
        self._refresh_extremes()
        return self._min_tf  # type: ignore[return-value]

    @property
    def total_energy_min(self) -> int:
        """Running sum of the members' ``cmin``."""
        return self._total_min

    @property
    def total_energy_max(self) -> int:
        """Running sum of the members' ``cmax``."""
        return self._total_max

    # ------------------------------------------------------------------ #
    # Materialisation (batch-identical)
    # ------------------------------------------------------------------ #
    def flex_offer(self, name: Optional[str] = None) -> FlexOffer:
        """The aggregate as a plain flex-offer.

        Equal (``==``) to the flex-offer inside
        ``aggregate_start_aligned(self.members(), name=name)``.
        """
        if not self._members:
            raise AggregationError("cannot materialise an empty aggregate")
        self._refresh_extremes()
        anchor: int = self._min_tes  # type: ignore[assignment]
        horizon: int = self._max_end  # type: ignore[assignment]
        slices = self._columns.materialise(anchor, horizon)
        label = name or "agg(" + ",".join(
            member.name or f"member{index}"
            for index, member in enumerate(self._members.values())
        ) + ")"
        return FlexOffer(
            anchor,
            anchor + self._min_tf,  # type: ignore[operator]
            tuple(slices),
            self._total_min,
            self._total_max,
            label,
        )

    def aggregated(self, name: Optional[str] = None) -> AggregatedFlexOffer:
        """The aggregate plus disaggregation bookkeeping.

        Equal (``==``) to ``aggregate_start_aligned(self.members(), name)``.
        """
        flex_offer = self.flex_offer(name)
        members = tuple(self._members.values())
        anchor = flex_offer.earliest_start
        offsets = tuple(member.earliest_start - anchor for member in members)
        return AggregatedFlexOffer(flex_offer, members, offsets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IncrementalAggregate({len(self._members)} members)"
