"""Incrementally maintained start-aligned aggregates.

The batch :func:`repro.aggregation.aggregate_start_aligned` rebuilds the
whole aligned profile from scratch on every call.  For a streaming group
that gains and loses one member at a time this is wasteful: almost all of
the aggregate's state is a collection of *sums* (per-column energy ranges,
total constraints) and *extremes* (anchor ``min tes``, common ``min tf``,
horizon ``max (tes + duration)``), and sums are trivially maintainable under
both add and remove.

:class:`IncrementalAggregate` therefore keeps

* a sparse column map ``absolute time → (Σ amin, Σ amax, cover count)`` over
  the members' *effective* slice bounds (the same bounds the batch path
  sums), updated in O(duration) per membership change;
* running totals of ``cmin``/``cmax`` (O(1) per change);
* running extremes for ``min tes``, ``min tf`` and ``max end``.  Adding a
  member can only tighten these monotonically (O(1)); removing the member
  that *attains* an extreme invalidates it, which is recorded with a dirty
  flag and repaired lazily — an O(group size) rebuild that only happens when
  the aggregate is next queried, not per event.

Materialising the aggregate (:meth:`flex_offer` / :meth:`aggregated`)
produces bit-for-bit the same :class:`~repro.aggregation.AggregatedFlexOffer`
the batch path builds for the same members in the same order: all sums are
integer arithmetic, so no floating-point drift can creep in.
"""

from __future__ import annotations

from typing import Optional

from ..aggregation.base import AggregatedFlexOffer
from ..core.errors import AggregationError
from ..core.flexoffer import FlexOffer
from ..core.slices import EnergySlice
from .events import StreamError

__all__ = ["IncrementalAggregate"]


class IncrementalAggregate:
    """A start-aligned aggregate maintained under member add/remove."""

    def __init__(self) -> None:
        self._members: dict[str, FlexOffer] = {}
        # absolute time unit -> [sum amin, sum amax, covering member count]
        self._columns: dict[int, list[int]] = {}
        self._total_min = 0
        self._total_max = 0
        self._min_tes: Optional[int] = None
        self._min_tf: Optional[int] = None
        self._max_end: Optional[int] = None
        self._extremes_dirty = False
        #: Number of lazy extreme rebuilds performed (observability hook).
        self.rebuilds = 0

    # ------------------------------------------------------------------ #
    # Membership maintenance
    # ------------------------------------------------------------------ #
    def add(self, offer_id: str, flex_offer: FlexOffer) -> None:
        """Add a member in O(duration)."""
        if offer_id in self._members:
            raise StreamError(f"offer {offer_id!r} is already aggregated")
        self._members[offer_id] = flex_offer
        start = flex_offer.earliest_start
        for index, bound in enumerate(flex_offer.effective_slice_bounds()):
            column = self._columns.setdefault(start + index, [0, 0, 0])
            column[0] += bound.amin
            column[1] += bound.amax
            column[2] += 1
        self._total_min += flex_offer.cmin
        self._total_max += flex_offer.cmax
        if not self._extremes_dirty:
            # Adding can only move the extremes monotonically.
            tes = flex_offer.earliest_start
            if self._min_tes is None or tes < self._min_tes:
                self._min_tes = tes
            tf = flex_offer.time_flexibility
            if self._min_tf is None or tf < self._min_tf:
                self._min_tf = tf
            end = flex_offer.earliest_end
            if self._max_end is None or end > self._max_end:
                self._max_end = end

    def remove(self, offer_id: str) -> FlexOffer:
        """Remove a member in O(duration); may mark the extremes dirty."""
        try:
            flex_offer = self._members.pop(offer_id)
        except KeyError:
            raise StreamError(f"offer {offer_id!r} is not aggregated here") from None
        start = flex_offer.earliest_start
        for index, bound in enumerate(flex_offer.effective_slice_bounds()):
            column = self._columns[start + index]
            column[0] -= bound.amin
            column[1] -= bound.amax
            column[2] -= 1
            if column[2] == 0:
                del self._columns[start + index]
        self._total_min -= flex_offer.cmin
        self._total_max -= flex_offer.cmax
        if not self._members:
            self._min_tes = self._min_tf = self._max_end = None
            self._extremes_dirty = False
        elif not self._extremes_dirty and (
            flex_offer.earliest_start == self._min_tes
            or flex_offer.time_flexibility == self._min_tf
            or flex_offer.earliest_end == self._max_end
        ):
            # The departing member attained a running extreme: the cheap
            # monotone update is no longer sound, repair lazily on demand.
            self._extremes_dirty = True
        return flex_offer

    def _refresh_extremes(self) -> None:
        if not self._extremes_dirty:
            return
        members = self._members.values()
        self._min_tes = min(member.earliest_start for member in members)
        self._min_tf = min(member.time_flexibility for member in members)
        self._max_end = max(member.earliest_end for member in members)
        self._extremes_dirty = False
        self.rebuilds += 1

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of member flex-offers."""
        return len(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, offer_id: str) -> bool:
        return offer_id in self._members

    def member_ids(self) -> list[str]:
        """Member ids in arrival order."""
        return list(self._members)

    def members(self) -> list[FlexOffer]:
        """Member flex-offers in arrival order."""
        return list(self._members.values())

    @property
    def anchor(self) -> int:
        """The aggregate's earliest start (``min tes`` over members)."""
        if not self._members:
            raise AggregationError("an empty aggregate has no anchor")
        self._refresh_extremes()
        return self._min_tes  # type: ignore[return-value]

    @property
    def time_flexibility(self) -> int:
        """The aggregate's time flexibility (``min tf`` over members)."""
        if not self._members:
            raise AggregationError("an empty aggregate has no time flexibility")
        self._refresh_extremes()
        return self._min_tf  # type: ignore[return-value]

    @property
    def total_energy_min(self) -> int:
        """Running sum of the members' ``cmin``."""
        return self._total_min

    @property
    def total_energy_max(self) -> int:
        """Running sum of the members' ``cmax``."""
        return self._total_max

    # ------------------------------------------------------------------ #
    # Materialisation (batch-identical)
    # ------------------------------------------------------------------ #
    def flex_offer(self, name: Optional[str] = None) -> FlexOffer:
        """The aggregate as a plain flex-offer.

        Equal (``==``) to the flex-offer inside
        ``aggregate_start_aligned(self.members(), name=name)``.
        """
        if not self._members:
            raise AggregationError("cannot materialise an empty aggregate")
        self._refresh_extremes()
        anchor: int = self._min_tes  # type: ignore[assignment]
        horizon: int = self._max_end  # type: ignore[assignment]
        slices = []
        for time in range(anchor, horizon):
            column = self._columns.get(time)
            if column is None:
                slices.append(EnergySlice(0, 0))
            else:
                slices.append(EnergySlice(column[0], column[1]))
        label = name or "agg(" + ",".join(
            member.name or f"member{index}"
            for index, member in enumerate(self._members.values())
        ) + ")"
        return FlexOffer(
            anchor,
            anchor + self._min_tf,  # type: ignore[operator]
            tuple(slices),
            self._total_min,
            self._total_max,
            label,
        )

    def aggregated(self, name: Optional[str] = None) -> AggregatedFlexOffer:
        """The aggregate plus disaggregation bookkeeping.

        Equal (``==``) to ``aggregate_start_aligned(self.members(), name)``.
        """
        flex_offer = self.flex_offer(name)
        members = tuple(self._members.values())
        anchor = flex_offer.earliest_start
        offsets = tuple(member.earliest_start - anchor for member in members)
        return AggregatedFlexOffer(flex_offer, members, offsets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IncrementalAggregate({len(self._members)} members)"
