"""Typed event model of the streaming flexibility engine.

The engine consumes an ordered stream of four event kinds mirroring the
life-cycle of a flex-offer in the Aggregator's book (Scenario 1/2 of the
paper): a prosumer *emits* an offer (:class:`OfferArrived`), the offer's
start-time window *lapses* unused (:class:`OfferExpired`), the market or a
scheduler *commits* it (:class:`OfferAssigned`), and wall-clock *ticks*
(:class:`Tick`) drive the time-based bookkeeping (auto-expiry, sliding-window
sampling).

:class:`EventLog` is the ordered, append-only log those events live in:
every appended event receives a monotonically increasing sequence number, so
any two consumers replaying the same log observe the same state — the
equivalence guarantee between the streaming and the batch pipeline is stated
over exactly this ordering.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Optional

from ..core.errors import FlexError
from ..core.flexoffer import FlexOffer

__all__ = [
    "StreamError",
    "StreamEvent",
    "OfferArrived",
    "OfferExpired",
    "OfferAssigned",
    "Tick",
    "EventLog",
]


class StreamError(FlexError):
    """Raised on invalid events or inconsistent event streams."""


@dataclass(frozen=True)
class StreamEvent:
    """Base class of every streaming event."""


@dataclass(frozen=True)
class OfferArrived(StreamEvent):
    """A new flex-offer entered the live population.

    ``offer_id`` identifies the offer for the rest of its life-cycle; two
    structurally identical offers from different prosumers carry different
    ids (use :func:`repro.stream.replay.offer_identifier` to derive stable
    ids from a batch population).
    """

    offer_id: str
    flex_offer: FlexOffer

    def __post_init__(self) -> None:
        if not self.offer_id:
            raise StreamError("OfferArrived needs a non-empty offer_id")
        if not isinstance(self.flex_offer, FlexOffer):
            raise StreamError(
                f"OfferArrived needs a FlexOffer, got {self.flex_offer!r}"
            )


@dataclass(frozen=True)
class OfferExpired(StreamEvent):
    """A live flex-offer left the population unused (its window lapsed)."""

    offer_id: str

    def __post_init__(self) -> None:
        if not self.offer_id:
            raise StreamError("OfferExpired needs a non-empty offer_id")


@dataclass(frozen=True)
class OfferAssigned(StreamEvent):
    """A live flex-offer was committed (scheduled or sold) and leaves the pool.

    ``start_time`` optionally records the start the scheduler fixed;
    ``price`` optionally records the clearing price of the market lot the
    offer was part of.
    """

    offer_id: str
    start_time: Optional[int] = None
    price: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.offer_id:
            raise StreamError("OfferAssigned needs a non-empty offer_id")


@dataclass(frozen=True)
class Tick(StreamEvent):
    """Wall-clock advanced to ``time`` (absolute time units, non-decreasing)."""

    time: int

    def __post_init__(self) -> None:
        if not isinstance(self.time, int) or isinstance(self.time, bool):
            raise StreamError(f"Tick time must be an int, got {self.time!r}")


class EventLog:
    """An ordered, append-only event log with monotonic sequence numbers.

    The log is the unit of replay: ``engine.replay(log)`` and
    ``engine.replay(log.since(n))`` both yield deterministic state because
    iteration always returns events in append order.
    """

    def __init__(self, events: Iterable[StreamEvent] = ()) -> None:
        self._events: list[StreamEvent] = []
        self.extend(events)

    def append(self, event: StreamEvent) -> int:
        """Append one event; returns its sequence number."""
        if not isinstance(event, StreamEvent):
            raise StreamError(f"not a StreamEvent: {event!r}")
        self._events.append(event)
        return len(self._events) - 1

    def extend(self, events: Iterable[StreamEvent]) -> None:
        """Append many events in order."""
        for event in events:
            self.append(event)

    def since(self, sequence: int) -> list[StreamEvent]:
        """All events with sequence number ``>= sequence`` (for catch-up)."""
        if sequence < 0:
            raise StreamError(f"sequence must be non-negative, got {sequence}")
        return self._events[sequence:]

    @property
    def next_sequence(self) -> int:
        """The sequence number the next appended event will receive."""
        return len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[StreamEvent]:
        return iter(self._events)

    def __getitem__(self, sequence: int) -> StreamEvent:
        return self._events[sequence]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventLog({len(self._events)} events)"
