"""``repro.faults`` — the deterministic fault-injection plane.

Robustness only counts when failure is a *testable input*: this package
defines seeded, replayable fault plans (:class:`FaultPlan` /
:class:`FaultRule`) and the named injection sites threaded through the
sharded compute backend (``shard.submit`` / ``shard.result``), the
remote-shard wire path (``cluster.connect`` / ``cluster.send`` /
``cluster.recv``), the write-ahead log (``wal.append`` / ``wal.commit`` /
``wal.fsync``), the snapshot store (``snapshot.replace``), the
persistence circuit breaker's probe (``persist.probe``) and the gateway
worker dispatch (``gateway.dispatch``).

Activate a plan per session with ``SessionConfig(fault_plan=...)``, per
gateway with ``GatewayConfig(fault_plan=...)``, or process-wide through
the ``REPRO_FAULTS`` environment variable (a JSON :meth:`FaultPlan.spec`
document).  The acceptance contract the chaos suite (``tests/faults/``)
pins: under any single-site plan, every request either returns a result
bit-identical to the fault-free run or a typed error — never corrupt
state, never a wedged session.

>>> from repro.faults import FaultPlan, FaultRule
>>> plan = FaultPlan([FaultRule("wal.fsync", error=OSError)])
>>> plan.fire("wal.fsync")
Traceback (most recent call last):
    ...
OSError: injected fault at wal.fsync (hit 1)
>>> plan.stats()["fired"]
{'wal.fsync': 1}
"""

from .plan import (
    ALL_SITES,
    CLUSTER_CONNECT,
    CLUSTER_RECV,
    CLUSTER_SEND,
    ENV_FAULTS,
    FaultInjected,
    FaultPlan,
    FaultRule,
    GATEWAY_DISPATCH,
    PERSIST_PROBE,
    SHARD_RESULT,
    SHARD_SUBMIT,
    SNAPSHOT_REPLACE,
    WAL_APPEND,
    WAL_COMMIT,
    WAL_FSYNC,
)

__all__ = [
    "ALL_SITES",
    "CLUSTER_CONNECT",
    "CLUSTER_RECV",
    "CLUSTER_SEND",
    "ENV_FAULTS",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "GATEWAY_DISPATCH",
    "PERSIST_PROBE",
    "SHARD_RESULT",
    "SHARD_SUBMIT",
    "SNAPSHOT_REPLACE",
    "WAL_APPEND",
    "WAL_COMMIT",
    "WAL_FSYNC",
]
