"""Deterministic fault rules and the seedable fault plan.

A :class:`FaultPlan` is a set of :class:`FaultRule` objects indexed by
*injection site* — a short dotted name a component fires as it crosses a
failure-prone boundary (``wal.fsync`` just before the fsync syscall,
``shard.submit`` before a shard is handed to the worker pool, …).  The
plan decides, per hit, whether to do nothing, sleep, raise a chosen
exception, or ask the caller to kill a worker.  Every decision is a pure
function of the rule, the site's hit counter and the plan's seeded RNG,
so a plan replayed against the same code path makes exactly the same
choices — faults become a reproducible test input, not an accident.

Rules select hits by position (``after``/``count``: fire on hits
``after .. after+count-1``) or by seeded probability; both can combine.
The injected exception defaults to :class:`FaultInjected`, an
:class:`OSError` subclass, so unconfigured injections follow the same
suspension/retry paths genuine I/O and worker failures do.
"""

from __future__ import annotations

import builtins
import importlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence, Union

__all__ = [
    "ALL_SITES",
    "CLUSTER_CONNECT",
    "CLUSTER_RECV",
    "CLUSTER_SEND",
    "ENV_FAULTS",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "GATEWAY_DISPATCH",
    "PERSIST_PROBE",
    "SHARD_RESULT",
    "SHARD_SUBMIT",
    "SNAPSHOT_REPLACE",
    "WAL_APPEND",
    "WAL_COMMIT",
    "WAL_FSYNC",
]

#: Environment variable holding a JSON :meth:`FaultPlan.spec` document.
ENV_FAULTS = "REPRO_FAULTS"

# The named injection sites threaded through the library.  A site string
# is just a convention between a component and its tests, so the set is
# open — but these are the ones the shipped components fire.
SHARD_SUBMIT = "shard.submit"
SHARD_RESULT = "shard.result"
CLUSTER_CONNECT = "cluster.connect"
CLUSTER_SEND = "cluster.send"
CLUSTER_RECV = "cluster.recv"
WAL_APPEND = "wal.append"
WAL_COMMIT = "wal.commit"
WAL_FSYNC = "wal.fsync"
SNAPSHOT_REPLACE = "snapshot.replace"
PERSIST_PROBE = "persist.probe"
GATEWAY_DISPATCH = "gateway.dispatch"

#: Every site the shipped components fire, for sweep-style tests.
ALL_SITES = (
    SHARD_SUBMIT,
    SHARD_RESULT,
    CLUSTER_CONNECT,
    CLUSTER_SEND,
    CLUSTER_RECV,
    WAL_APPEND,
    WAL_COMMIT,
    WAL_FSYNC,
    SNAPSHOT_REPLACE,
    PERSIST_PROBE,
    GATEWAY_DISPATCH,
)

_ACTIONS = ("raise", "delay", "kill")


class FaultInjected(OSError):
    """The default injected exception.

    Subclasses :class:`OSError` deliberately: the persistence layer
    suspends on ``OSError`` and the sharded executor retries injected
    faults, so an unconfigured ``raise`` rule exercises exactly the
    degraded/self-healing paths a real disk or worker failure would.
    """


def _error_name(error: type) -> str:
    """The spec string for an exception class (round-trips via resolve)."""
    if error is FaultInjected:
        return "FaultInjected"
    if getattr(builtins, error.__name__, None) is error:
        return error.__name__
    return f"{error.__module__}.{error.__qualname__}"


def _resolve_error(name: Union[str, type]) -> type:
    """An exception class from its spec string (or pass a class through)."""
    if isinstance(name, type):
        if not issubclass(name, BaseException):
            raise ValueError(f"{name!r} is not an exception class")
        return name
    if not isinstance(name, str):
        raise ValueError(f"fault error must be a class or name, got {name!r}")
    if name == "FaultInjected":
        return FaultInjected
    resolved = getattr(builtins, name, None)
    if resolved is None and "." in name:
        module_name, _, attribute = name.rpartition(".")
        try:
            resolved = getattr(importlib.import_module(module_name), attribute)
        except (ImportError, AttributeError):
            resolved = None
    if not (isinstance(resolved, type) and issubclass(resolved, BaseException)):
        raise ValueError(f"unknown fault error class {name!r}")
    return resolved


@dataclass(frozen=True)
class FaultRule:
    """One per-site rule: what to inject, and on which hits.

    Parameters
    ----------
    site:
        The injection-site name the rule matches (exact string match).
    action:
        ``"raise"`` (raise ``error``), ``"delay"`` (sleep ``delay_s``) or
        ``"kill"`` (ask the firing component to kill a worker; components
        without workers treat it as ``raise``).
    error:
        Exception class (or its spec string) for ``raise`` rules.
    after:
        1-based hit number the rule first fires on.
    count:
        How many consecutive matching hits fire; ``None`` means every hit
        from ``after`` on.
    delay_s:
        Sleep duration for ``delay`` rules.
    probability:
        When set, each positionally matching hit additionally draws from
        the plan's seeded RNG and fires only with this probability.
    """

    site: str
    action: str = "raise"
    error: Union[str, type] = FaultInjected
    after: int = 1
    count: Optional[int] = 1
    delay_s: float = 0.0
    probability: Optional[float] = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; use one of {_ACTIONS}"
            )
        if self.after < 1:
            raise ValueError(f"after must be >= 1, got {self.after}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1 or None, got {self.count}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must lie in [0, 1], got {self.probability}"
            )
        object.__setattr__(self, "error", _resolve_error(self.error))

    def matches(self, hit: int) -> bool:
        """Whether the rule's positional window covers this hit number."""
        if hit < self.after:
            return False
        return self.count is None or hit < self.after + self.count

    def spec(self) -> dict:
        """A JSON-ready description (round-trips via :meth:`from_spec`)."""
        payload: dict = {"site": self.site, "action": self.action}
        if self.action == "raise":
            payload["error"] = _error_name(self.error)
        if self.after != 1:
            payload["after"] = self.after
        if self.count != 1:
            payload["count"] = self.count
        if self.delay_s:
            payload["delay_s"] = self.delay_s
        if self.probability is not None:
            payload["probability"] = self.probability
        return payload

    @classmethod
    def from_spec(cls, payload: dict) -> "FaultRule":
        """Rebuild a rule from :meth:`spec` output."""
        if not isinstance(payload, dict) or "site" not in payload:
            raise ValueError(f"not a fault-rule spec: {payload!r}")
        known = {"site", "action", "error", "after", "count", "delay_s", "probability"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown fault-rule fields: {unknown}")
        return cls(**payload)


@dataclass(eq=False)
class FaultPlan:
    """A deterministic, thread-safe set of fault rules.

    Components holding a plan call :meth:`fire` at each named site; the
    plan counts the hit, evaluates the site's rules in order and acts on
    the first that fires.  ``raise`` rules raise, ``delay`` rules sleep
    and return ``None``, ``kill`` rules return ``"kill"`` for the caller
    to act on.  All bookkeeping is guarded by a lock so one plan can be
    shared by a session, its backend pool threads and its persister.

    >>> plan = FaultPlan([FaultRule("wal.fsync", after=2)])
    >>> plan.fire("wal.fsync")          # first hit: no rule matches
    >>> plan.fire("wal.fsync")
    Traceback (most recent call last):
        ...
    repro.faults.plan.FaultInjected: injected fault at wal.fsync (hit 2)
    """

    rules: Sequence[FaultRule] = ()
    seed: int = 0
    #: Per-site hit counters (every ``fire`` call, fired or not).
    hits: Dict[str, int] = field(default_factory=dict)
    #: Per-site counters of hits that actually injected a fault.
    fired: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.rules = tuple(
            rule if isinstance(rule, FaultRule) else FaultRule.from_spec(rule)
            for rule in self.rules
        )
        self._rng = Random(self.seed)
        self._lock = threading.Lock()

    def fire(self, site: str) -> Optional[str]:
        """Record one hit at ``site`` and act on the first firing rule.

        Returns ``None`` (no fault, or a delay that already slept) or
        ``"kill"``; raises the configured exception for ``raise`` rules.
        """
        with self._lock:
            hit = self.hits.get(site, 0) + 1
            self.hits[site] = hit
            chosen: Optional[FaultRule] = None
            for rule in self.rules:
                if rule.site != site or not rule.matches(hit):
                    continue
                if (
                    rule.probability is not None
                    and self._rng.random() >= rule.probability
                ):
                    continue
                chosen = rule
                break
            if chosen is None:
                return None
            self.fired[site] = self.fired.get(site, 0) + 1
        if chosen.action == "delay":
            time.sleep(chosen.delay_s)
            return None
        if chosen.action == "kill":
            return "kill"
        raise chosen.error(f"injected fault at {site} (hit {hit})")

    def spec(self) -> dict:
        """A JSON-ready description (round-trips via :meth:`from_spec`)."""
        return {"seed": self.seed, "rules": [rule.spec() for rule in self.rules]}

    @classmethod
    def from_spec(cls, payload: Union[str, dict, list]) -> "FaultPlan":
        """Rebuild a plan from :meth:`spec` output (or its JSON string).

        A bare list is accepted as shorthand for ``{"rules": [...]}``.
        """
        if isinstance(payload, str):
            try:
                payload = json.loads(payload)
            except ValueError as error:
                raise ValueError(f"malformed fault-plan JSON: {error}") from error
        if isinstance(payload, list):
            payload = {"rules": payload}
        if not isinstance(payload, dict):
            raise ValueError(f"not a fault-plan spec: {payload!r}")
        unknown = sorted(set(payload) - {"seed", "rules"})
        if unknown:
            raise ValueError(f"unknown fault-plan fields: {unknown}")
        rules = [FaultRule.from_spec(rule) for rule in payload.get("rules", [])]
        return cls(rules=rules, seed=int(payload.get("seed", 0)))

    @classmethod
    def from_env(cls, variable: str = ENV_FAULTS) -> Optional["FaultPlan"]:
        """The plan described by the environment, or ``None`` when unset.

        A malformed value is ignored with a warning (like every other
        ``REPRO_*`` knob read at construction time) rather than taking
        the session down.
        """
        raw = os.environ.get(variable)
        if raw is None or not raw.strip():
            return None
        try:
            return cls.from_spec(raw)
        except ValueError:
            from ..backend.dispatch import _warn_ignored_env

            _warn_ignored_env(variable, raw, "a JSON fault-plan spec")
            return None

    def stats(self) -> dict:
        """Hit/fired counters for health blocks and test assertions."""
        with self._lock:
            return {
                "seed": self.seed,
                "rules": len(self.rules),
                "hits": dict(self.hits),
                "fired": dict(self.fired),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sites = sorted({rule.site for rule in self.rules})
        return f"FaultPlan(sites={sites}, seed={self.seed})"
