"""Durable sessions: write-ahead event log, snapshots and crash recovery.

The package gives a :class:`~repro.service.FlexSession` an on-disk life
that survives process restarts:

* :class:`WriteAheadLog` — an append-only, CRC-framed log of every
  mutating stream event, buffered per request and fsynced at commit,
  tolerant of torn tails left by crashes mid-append;
* :class:`SnapshotStore` — versioned, atomically replaced checkpoints of
  the full engine state, corruption-checked and retained N-deep so a bad
  newest snapshot degrades to the previous one plus a longer replay;
* :class:`SessionPersister` — the coordinator wiring both to one session
  directory: log-after-apply on the write path, snapshot + strict
  sequential tail replay on the read path, and a *degraded mode* that
  suspends persistence (instead of failing requests) when the disk stops
  accepting writes, resuming through a probe-based circuit breaker with
  a forced snapshot (see :class:`PersistenceSuspendedError`).

The correctness contract (exercised by the crash-point property tests in
``tests/persist/``): for **any** prefix of committed events and **any**
crash point — including torn WAL tails and corrupted snapshot files —
recovering and replaying the tail yields a session whose observable
state is bit-identical to replaying the full event history into a fresh
engine, on every compute backend.

Quick start::

    from repro.service import FlexSession, SessionConfig

    session = FlexSession(SessionConfig(persist_dir="/var/lib/flex/acme"))
    ...                        # stream requests are logged + checkpointed
    session.close()            # final checkpoint

    session = FlexSession(SessionConfig(persist_dir="/var/lib/flex/acme"))
    session.recovery           # RecoveryStats: snapshot + tail replayed
"""

from .persister import (
    PersistenceSuspendedError,
    RecoveryStats,
    SessionPersister,
    load_config,
    save_config,
)
from .snapshot import FORMAT_VERSION, SnapshotStore
from .wal import PersistError, WalRecord, WriteAheadLog, read_wal_records

__all__ = [
    "FORMAT_VERSION",
    "PersistError",
    "PersistenceSuspendedError",
    "RecoveryStats",
    "SessionPersister",
    "SnapshotStore",
    "WalRecord",
    "WriteAheadLog",
    "load_config",
    "read_wal_records",
    "save_config",
]
