"""The per-session durability coordinator: WAL + snapshots + recovery.

:class:`SessionPersister` owns one session directory::

    <persist_dir>/
        config.json            # the SessionConfig that built the session
        snapshot-<seq>.json    # versioned engine-state checkpoints
        wal-<seq>.log          # CRC-framed event segments

The write path is *log-after-apply*: the session applies an event to the
engine, appends its :func:`repro.io.event_to_dict` record, and commits
(flush + fsync) once per request — so the WAL only ever contains events
that actually mutated the engine, and a mid-batch failure cannot make the
log diverge from the state.  The read path is *snapshot + tail replay*:
recovery restores the newest valid snapshot and replays only the WAL
records past its watermark, O(snapshot + tail) instead of O(history).

**Degraded mode.**  Durability failures must not take serving down: an
``OSError`` (disk full, injected fault, dead volume) on the append,
commit or checkpoint path *suspends* persistence instead of failing the
request.  While suspended the session keeps answering from memory,
:meth:`SessionPersister.stats` reports ``status: "degraded"``, explicit
checkpoints raise :class:`PersistenceSuspendedError` (the gateway maps it
to HTTP 503), and every :meth:`maybe_checkpoint` tick runs a probe-based
circuit breaker — a small write + fsync + unlink in the session
directory.  Once a probe succeeds the persister resumes: the WAL rewinds
its dirty tail, a forced snapshot captures the engine state (covering
every event that went unlogged while degraded) and a fresh segment
starts, so recovery after a resume is exactly as trustworthy as one that
never degraded.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

from ..faults.plan import PERSIST_PROBE, FaultInjected, FaultPlan
from ..io.serialization import event_from_dict, event_to_dict
from .snapshot import SnapshotStore
from .wal import PersistError, WriteAheadLog

__all__ = [
    "PersistenceSuspendedError",
    "RecoveryStats",
    "SessionPersister",
    "load_config",
    "save_config",
]

_CONFIG_FILE = "config.json"

#: Name of the transient file the resume circuit breaker writes.
_PROBE_FILE = ".probe"


class PersistenceSuspendedError(PersistError):
    """Raised by explicit checkpoints while persistence is suspended.

    Regular request traffic never sees this — logging and commits degrade
    silently — but an operation whose *whole point* is durability (the
    checkpoint route, ``FlexSession.checkpoint()``) must fail loudly.  The
    gateway maps it to HTTP 503 with the ``degraded`` error code.
    """


def save_config(directory: Union[str, Path], payload: dict) -> Path:
    """Atomically write the session's ``config.json`` (once per directory).

    An existing file is left untouched: the config that *created* the
    persisted state is the one recovery must rebuild the session with.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / _CONFIG_FILE
    if path.exists():
        return path
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, allow_nan=False)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_config(directory: Union[str, Path]) -> Optional[dict]:
    """The persisted ``config.json`` payload, or ``None`` when absent/bad."""
    path = Path(directory) / _CONFIG_FILE
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


@dataclass(frozen=True)
class RecoveryStats:
    """What one recovery did: where it started and how much it replayed."""

    #: WAL watermark of the snapshot recovery started from (0 = none).
    snapshot_seq: int
    #: Live offers restored straight from the snapshot.
    restored: int
    #: WAL tail events replayed on top of the snapshot.
    replayed: int
    #: Wall-clock seconds the recovery took.
    duration_s: float

    def as_dict(self) -> dict:
        """A JSON-ready copy for health blocks."""
        return {
            "snapshot_seq": self.snapshot_seq,
            "restored": self.restored,
            "replayed": self.replayed,
            "duration_s": self.duration_s,
        }


class SessionPersister:
    """Durability for one session: event logging, checkpoints, recovery.

    Parameters
    ----------
    directory:
        The session's persistence directory (created if missing).
    fsync:
        Whether WAL commits and snapshot writes fsync.
    checkpoint_events:
        WAL records accumulated since the last snapshot that trigger an
        automatic checkpoint at the next :meth:`maybe_checkpoint`.
    checkpoint_age_s:
        Optional wall-clock age of the last snapshot that triggers one,
        for quiet sessions trickling single events.
    keep_snapshots:
        Snapshots retained (see :class:`~repro.persist.SnapshotStore`).
    clock:
        Monotonic time source (injectable for the age-policy tests).
    faults:
        Optional :class:`repro.faults.FaultPlan`, threaded through to the
        WAL and snapshot store and fired at ``persist.probe`` by the
        resume circuit breaker.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fsync: bool = True,
        checkpoint_events: int = 1024,
        checkpoint_age_s: Optional[float] = None,
        keep_snapshots: int = 2,
        clock: Callable[[], float] = time.monotonic,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if checkpoint_events < 1:
            raise PersistError(
                f"checkpoint_events must be >= 1, got {checkpoint_events}"
            )
        if checkpoint_age_s is not None and checkpoint_age_s <= 0:
            raise PersistError(
                f"checkpoint_age_s must be positive, got {checkpoint_age_s}"
            )
        self.directory = Path(directory)
        self.checkpoint_events = checkpoint_events
        self.checkpoint_age_s = checkpoint_age_s
        self._clock = clock
        self._faults = faults
        self.wal = WriteAheadLog(self.directory, fsync=fsync, faults=faults)
        self.snapshots = SnapshotStore(
            self.directory, keep=keep_snapshots, fsync=fsync, faults=faults
        )
        latest = self.snapshots.paths()
        self._snapshot_seq = latest[-1][0] if latest else 0
        self._snapshot_at = clock()
        self.checkpoints = 0
        self._closed = False
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self.suspended_seq = 0
        self.suspensions = 0
        self.resumptions = 0
        self.probe_attempts = 0

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def log_event(self, event) -> Optional[int]:
        """Append one *applied* event; durable at the next :meth:`commit`.

        Returns the record's sequence number — or ``None`` when the write
        failed (or persistence was already suspended): the event stays
        applied and un-durable, and the snapshot a successful resume
        forces will cover it.
        """
        if self.degraded:
            return None
        try:
            return self.wal.append({"event": event_to_dict(event)})
        except OSError as error:
            self._suspend(error)
            return None

    def commit(self) -> None:
        """The request-level commit point (flush + configured fsync).

        A failing flush/fsync suspends persistence instead of raising —
        the request that triggered it still succeeds.
        """
        if self.degraded:
            return
        try:
            self.wal.commit()
        except OSError as error:
            self._suspend(error)

    def checkpoint(self, engine, extra: Optional[dict] = None) -> dict:
        """Snapshot the engine now; rotate and prune the WAL behind it.

        ``extra`` rides along under the state's ``"session"`` key (the
        service layer stores its request counter there).  Returns a
        JSON-ready summary block.  Raises
        :class:`PersistenceSuspendedError` while suspended, or when the
        checkpoint itself hits an ``OSError`` (which suspends).
        """
        if self._closed:
            raise PersistError("the persister is closed")
        if self.degraded:
            raise PersistenceSuspendedError(
                f"persistence is suspended ({self.degraded_reason}); "
                "serving continues without durability until writes recover"
            )
        started = self._clock()
        try:
            self.wal.commit()
            seq = self.wal.last_seq
            state = engine.export_state()
            if extra:
                state["session"] = dict(extra)
            self.snapshots.write(seq, state)
            self.wal.rotate()
            self.wal.prune(seq)
        except OSError as error:
            self._suspend(error)
            raise PersistenceSuspendedError(
                f"checkpoint failed and suspended persistence: {error}"
            ) from error
        self._snapshot_seq = seq
        self._snapshot_at = self._clock()
        self.checkpoints += 1
        return {
            "snapshot_seq": seq,
            "live": len(state["live"]),
            "duration_s": self._clock() - started,
        }

    def maybe_checkpoint(self, engine, extra: Optional[dict] = None) -> Optional[dict]:
        """Checkpoint when the size or age policy says so; else ``None``.

        While suspended this is the circuit breaker's tick: instead of
        checkpointing it probes the directory and, once writes succeed
        again, resumes with a forced snapshot (returned like a regular
        checkpoint summary).
        """
        if self.degraded:
            return self.try_resume(engine, extra)
        pending = self.wal.last_seq - self._snapshot_seq
        if pending <= 0:
            return None
        if pending >= self.checkpoint_events or (
            self.checkpoint_age_s is not None
            and self._clock() - self._snapshot_at >= self.checkpoint_age_s
        ):
            try:
                return self.checkpoint(engine, extra)
            except PersistenceSuspendedError:
                return None
        return None

    def try_resume(self, engine, extra: Optional[dict] = None) -> Optional[dict]:
        """One circuit-breaker attempt: probe, then resume via checkpoint.

        Returns the forced checkpoint's summary on success, ``None`` when
        the probe (or the checkpoint retry) says the directory is still
        unwritable — in which case the persister stays suspended.
        """
        if self._closed or not self.degraded:
            return None
        if not self._probe():
            return None
        self.degraded = False
        self.degraded_reason = None
        try:
            summary = self.checkpoint(engine, extra)
        except PersistenceSuspendedError:
            return None
        self.resumptions += 1
        return summary

    def close(self, engine=None, extra: Optional[dict] = None) -> None:
        """Final checkpoint (when dirty and an engine is given) and shutdown.

        This is what makes registry eviction *checkpoint-then-close*: any
        WAL tail past the last snapshot is folded into a final snapshot so
        a later lazy recovery answers from state, not from a long replay.
        A suspended persister gets one last resume attempt, then closes
        without raising either way.  Idempotent.
        """
        if self._closed:
            return
        if self.degraded and engine is not None:
            self.try_resume(engine, extra)
        if engine is not None and not self.degraded and self.dirty:
            try:
                self.checkpoint(engine, extra)
            except PersistenceSuspendedError:
                pass
        self._closed = True
        try:
            self.wal.close()
        except OSError:
            pass

    @property
    def dirty(self) -> bool:
        """Whether events were logged past the last snapshot."""
        return self.wal.last_seq > self._snapshot_seq

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def has_state(self) -> bool:
        """Whether the directory holds anything to recover."""
        return bool(self.snapshots.paths()) or self.wal.last_seq > 0

    def recover(self, engine) -> Tuple[RecoveryStats, dict]:
        """Rebuild a pristine engine: newest valid snapshot + WAL tail.

        Returns ``(stats, session_extra)`` where ``session_extra`` is the
        dictionary :meth:`checkpoint` stored under ``"session"``.  Tail
        replay is strictly sequential: it stops at the first gap in the
        sequence numbers (a mid-log corruption makes everything after it
        unreachable — replaying across the hole could apply events to the
        wrong state), and torn final records were already truncated when
        the WAL opened.
        """
        started = self._clock()
        snapshot_seq = 0
        restored = 0
        extra: dict = {}
        latest = self.snapshots.latest()
        if latest is not None:
            snapshot_seq, state = latest
            engine.restore_state(state)
            restored = len(state.get("live", ()))
            session_extra = state.get("session")
            if isinstance(session_extra, dict):
                extra = session_extra
        replayed = 0
        expected = snapshot_seq + 1
        for record in self.wal.records(after_seq=snapshot_seq):
            if record.seq != expected:
                break
            engine.apply(event_from_dict(record.payload["event"]))
            expected += 1
            replayed += 1
        self._snapshot_seq = snapshot_seq
        stats = RecoveryStats(
            snapshot_seq=snapshot_seq,
            restored=restored,
            replayed=replayed,
            duration_s=self._clock() - started,
        )
        return stats, extra

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Counters for the session health block."""
        return {
            "directory": str(self.directory),
            "status": "degraded" if self.degraded else "ok",
            "degraded_reason": self.degraded_reason,
            "suspensions": self.suspensions,
            "resumptions": self.resumptions,
            "probe_attempts": self.probe_attempts,
            "snapshot_seq": self._snapshot_seq,
            "snapshots": len(self.snapshots.paths()),
            "checkpoints": self.checkpoints,
            "pending": self.wal.last_seq - self._snapshot_seq,
            **self.wal.stats(),
        }

    # ------------------------------------------------------------------ #
    # Degraded-mode internals
    # ------------------------------------------------------------------ #
    def _suspend(self, error: BaseException) -> None:
        """Enter degraded mode; remembers why and where for ``stats()``."""
        self.degraded = True
        self.degraded_reason = f"{type(error).__name__}: {error}"
        self.suspended_seq = self.wal.last_seq
        self.suspensions += 1

    def _probe(self) -> bool:
        """Whether the directory accepts a durable write right now."""
        self.probe_attempts += 1
        path = self.directory / _PROBE_FILE
        try:
            if (
                self._faults is not None
                and self._faults.fire(PERSIST_PROBE) is not None
            ):
                raise FaultInjected(f"injected fault at {PERSIST_PROBE}")
            with open(path, "wb") as handle:
                handle.write(b"probe")
                handle.flush()
                os.fsync(handle.fileno())
            path.unlink()
            return True
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
            return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SessionPersister({self.directory})"
