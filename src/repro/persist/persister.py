"""The per-session durability coordinator: WAL + snapshots + recovery.

:class:`SessionPersister` owns one session directory::

    <persist_dir>/
        config.json            # the SessionConfig that built the session
        snapshot-<seq>.json    # versioned engine-state checkpoints
        wal-<seq>.log          # CRC-framed event segments

The write path is *log-after-apply*: the session applies an event to the
engine, appends its :func:`repro.io.event_to_dict` record, and commits
(flush + fsync) once per request — so the WAL only ever contains events
that actually mutated the engine, and a mid-batch failure cannot make the
log diverge from the state.  The read path is *snapshot + tail replay*:
recovery restores the newest valid snapshot and replays only the WAL
records past its watermark, O(snapshot + tail) instead of O(history).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

from ..io.serialization import event_from_dict, event_to_dict
from .snapshot import SnapshotStore
from .wal import PersistError, WriteAheadLog

__all__ = [
    "RecoveryStats",
    "SessionPersister",
    "load_config",
    "save_config",
]

_CONFIG_FILE = "config.json"


def save_config(directory: Union[str, Path], payload: dict) -> Path:
    """Atomically write the session's ``config.json`` (once per directory).

    An existing file is left untouched: the config that *created* the
    persisted state is the one recovery must rebuild the session with.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / _CONFIG_FILE
    if path.exists():
        return path
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, allow_nan=False)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_config(directory: Union[str, Path]) -> Optional[dict]:
    """The persisted ``config.json`` payload, or ``None`` when absent/bad."""
    path = Path(directory) / _CONFIG_FILE
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


@dataclass(frozen=True)
class RecoveryStats:
    """What one recovery did: where it started and how much it replayed."""

    #: WAL watermark of the snapshot recovery started from (0 = none).
    snapshot_seq: int
    #: Live offers restored straight from the snapshot.
    restored: int
    #: WAL tail events replayed on top of the snapshot.
    replayed: int
    #: Wall-clock seconds the recovery took.
    duration_s: float

    def as_dict(self) -> dict:
        """A JSON-ready copy for health blocks."""
        return {
            "snapshot_seq": self.snapshot_seq,
            "restored": self.restored,
            "replayed": self.replayed,
            "duration_s": self.duration_s,
        }


class SessionPersister:
    """Durability for one session: event logging, checkpoints, recovery.

    Parameters
    ----------
    directory:
        The session's persistence directory (created if missing).
    fsync:
        Whether WAL commits and snapshot writes fsync.
    checkpoint_events:
        WAL records accumulated since the last snapshot that trigger an
        automatic checkpoint at the next :meth:`maybe_checkpoint`.
    checkpoint_age_s:
        Optional wall-clock age of the last snapshot that triggers one,
        for quiet sessions trickling single events.
    keep_snapshots:
        Snapshots retained (see :class:`~repro.persist.SnapshotStore`).
    clock:
        Monotonic time source (injectable for the age-policy tests).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fsync: bool = True,
        checkpoint_events: int = 1024,
        checkpoint_age_s: Optional[float] = None,
        keep_snapshots: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if checkpoint_events < 1:
            raise PersistError(
                f"checkpoint_events must be >= 1, got {checkpoint_events}"
            )
        if checkpoint_age_s is not None and checkpoint_age_s <= 0:
            raise PersistError(
                f"checkpoint_age_s must be positive, got {checkpoint_age_s}"
            )
        self.directory = Path(directory)
        self.checkpoint_events = checkpoint_events
        self.checkpoint_age_s = checkpoint_age_s
        self._clock = clock
        self.wal = WriteAheadLog(self.directory, fsync=fsync)
        self.snapshots = SnapshotStore(
            self.directory, keep=keep_snapshots, fsync=fsync
        )
        latest = self.snapshots.paths()
        self._snapshot_seq = latest[-1][0] if latest else 0
        self._snapshot_at = clock()
        self.checkpoints = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def log_event(self, event) -> int:
        """Append one *applied* event; durable at the next :meth:`commit`."""
        return self.wal.append({"event": event_to_dict(event)})

    def commit(self) -> None:
        """The request-level commit point (flush + configured fsync)."""
        self.wal.commit()

    def checkpoint(self, engine, extra: Optional[dict] = None) -> dict:
        """Snapshot the engine now; rotate and prune the WAL behind it.

        ``extra`` rides along under the state's ``"session"`` key (the
        service layer stores its request counter there).  Returns a
        JSON-ready summary block.
        """
        if self._closed:
            raise PersistError("the persister is closed")
        started = self._clock()
        self.commit()
        seq = self.wal.last_seq
        state = engine.export_state()
        if extra:
            state["session"] = dict(extra)
        self.snapshots.write(seq, state)
        self.wal.rotate()
        self.wal.prune(seq)
        self._snapshot_seq = seq
        self._snapshot_at = self._clock()
        self.checkpoints += 1
        return {
            "snapshot_seq": seq,
            "live": len(state["live"]),
            "duration_s": self._clock() - started,
        }

    def maybe_checkpoint(self, engine, extra: Optional[dict] = None) -> Optional[dict]:
        """Checkpoint when the size or age policy says so; else ``None``."""
        pending = self.wal.last_seq - self._snapshot_seq
        if pending <= 0:
            return None
        if pending >= self.checkpoint_events or (
            self.checkpoint_age_s is not None
            and self._clock() - self._snapshot_at >= self.checkpoint_age_s
        ):
            return self.checkpoint(engine, extra)
        return None

    def close(self, engine=None, extra: Optional[dict] = None) -> None:
        """Final checkpoint (when dirty and an engine is given) and shutdown.

        This is what makes registry eviction *checkpoint-then-close*: any
        WAL tail past the last snapshot is folded into a final snapshot so
        a later lazy recovery answers from state, not from a long replay.
        Idempotent.
        """
        if self._closed:
            return
        if engine is not None and self.dirty:
            self.checkpoint(engine, extra)
        self._closed = True
        self.wal.close()

    @property
    def dirty(self) -> bool:
        """Whether events were logged past the last snapshot."""
        return self.wal.last_seq > self._snapshot_seq

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def has_state(self) -> bool:
        """Whether the directory holds anything to recover."""
        return bool(self.snapshots.paths()) or self.wal.last_seq > 0

    def recover(self, engine) -> Tuple[RecoveryStats, dict]:
        """Rebuild a pristine engine: newest valid snapshot + WAL tail.

        Returns ``(stats, session_extra)`` where ``session_extra`` is the
        dictionary :meth:`checkpoint` stored under ``"session"``.  Tail
        replay is strictly sequential: it stops at the first gap in the
        sequence numbers (a mid-log corruption makes everything after it
        unreachable — replaying across the hole could apply events to the
        wrong state), and torn final records were already truncated when
        the WAL opened.
        """
        started = self._clock()
        snapshot_seq = 0
        restored = 0
        extra: dict = {}
        latest = self.snapshots.latest()
        if latest is not None:
            snapshot_seq, state = latest
            engine.restore_state(state)
            restored = len(state.get("live", ()))
            session_extra = state.get("session")
            if isinstance(session_extra, dict):
                extra = session_extra
        replayed = 0
        expected = snapshot_seq + 1
        for record in self.wal.records(after_seq=snapshot_seq):
            if record.seq != expected:
                break
            engine.apply(event_from_dict(record.payload["event"]))
            expected += 1
            replayed += 1
        self._snapshot_seq = snapshot_seq
        stats = RecoveryStats(
            snapshot_seq=snapshot_seq,
            restored=restored,
            replayed=replayed,
            duration_s=self._clock() - started,
        )
        return stats, extra

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Counters for the session health block."""
        return {
            "directory": str(self.directory),
            "snapshot_seq": self._snapshot_seq,
            "snapshots": len(self.snapshots.paths()),
            "checkpoints": self.checkpoints,
            "pending": self.wal.last_seq - self._snapshot_seq,
            **self.wal.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SessionPersister({self.directory})"
