"""The append-only, CRC-framed event log backing durable sessions.

One :class:`WriteAheadLog` per persisted session directory.  Records are
kind-tagged :func:`repro.io.event_to_dict` documents wrapped with a
monotonic sequence number, framed as::

    <length: uint32 LE> <crc32(payload): uint32 LE> <payload: UTF-8 JSON>

The framing is what makes crashes survivable:

* **fsync-on-commit** — appends are buffered; :meth:`WriteAheadLog.commit`
  flushes and (by default) ``fsync``\\ s, so a request is durable exactly
  when the service acknowledged it and a crash loses only events no
  client was ever told succeeded;
* **torn-tail tolerance** — a crash mid-append leaves a final record with
  a short body or a CRC mismatch.  :func:`read_wal_records` stops at the
  first invalid frame, and opening the log truncates the torn bytes away,
  so recovery *never* raises on a partially written tail;
* **segment rotation** — a checkpoint rotates to a fresh segment file
  (``wal-<first_seq>.log``) and prunes segments the snapshot fully
  covers, keeping the tail short and the replay O(events since the last
  checkpoint).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..core.errors import FlexError
from ..faults.plan import WAL_APPEND, WAL_COMMIT, WAL_FSYNC, FaultInjected, FaultPlan

__all__ = ["PersistError", "WalRecord", "WriteAheadLog", "read_wal_records"]

#: Per-record frame header: payload length, then the payload's CRC-32.
_HEADER = struct.Struct("<II")

#: Segment file name carrying the first sequence number it may contain.
_SEGMENT_FORMAT = "wal-{seq:012d}.log"
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


class PersistError(FlexError):
    """Raised on unrecoverable persistence misuse (never on a torn tail)."""


@dataclass(frozen=True)
class WalRecord:
    """One committed log record: its sequence number and JSON payload."""

    seq: int
    payload: dict


def read_wal_records(
    path: Union[str, Path], repair: bool = False
) -> List[WalRecord]:
    """Every valid record of one segment file, in write order.

    Reading stops at the first invalid frame — a short header, a short
    body, a CRC mismatch or an unparseable payload — which is exactly the
    torn tail a crash mid-append leaves behind.  With ``repair=True`` the
    invalid suffix is truncated off the file so subsequent appends extend
    a clean log.  A missing file reads as empty.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return []
    records: List[WalRecord] = []
    offset = 0
    while True:
        header = data[offset : offset + _HEADER.size]
        if len(header) < _HEADER.size:
            break
        length, crc = _HEADER.unpack(header)
        body = data[offset + _HEADER.size : offset + _HEADER.size + length]
        if len(body) < length or zlib.crc32(body) != crc:
            break
        try:
            payload = json.loads(body.decode("utf-8"))
            seq = int(payload["seq"])
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            break
        records.append(WalRecord(seq, payload))
        offset += _HEADER.size + length
    if repair and offset < len(data):
        with open(path, "r+b") as handle:
            handle.truncate(offset)
    return records


def _segment_start(path: Path) -> Optional[int]:
    """The first sequence number a segment file name claims, or ``None``."""
    name = path.name
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    try:
        return int(name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])
    except ValueError:
        return None


class WriteAheadLog:
    """An append-only log of JSON records across rotated segment files.

    Parameters
    ----------
    directory:
        Where the ``wal-*.log`` segments live (created if missing).
    fsync:
        Whether :meth:`commit` fsyncs.  ``False`` trades the
        machine-crash guarantee for speed (a *process* crash still loses
        nothing the OS already buffered) — the durability knob surfaced as
        ``SessionConfig(persist_fsync=...)``.
    faults:
        Optional :class:`repro.faults.FaultPlan`; when set, the log fires
        the ``wal.append`` / ``wal.commit`` / ``wal.fsync`` injection
        sites at the matching boundaries.

    Opening an existing directory repairs the torn tail of every segment
    and resumes the sequence numbering where the last valid record left
    off; sequence numbers start at 1 and are globally monotonic across
    rotations.

    A failed :meth:`commit` (flush or fsync raising) marks the log
    *dirty*: the buffered frames are in an unknown half-written state, so
    the next :meth:`append` or :meth:`commit` first rewinds — truncates
    the active segment back to the last committed offset and resets the
    sequence counter — before writing anything new.  Callers therefore
    never re-log on top of a torn middle, and :meth:`records` only ever
    shows the committed prefix plus cleanly re-appended records.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fsync: bool = True,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._faults = faults
        self.last_seq = 0
        self.appended = 0
        self.commits = 0
        self.rewinds = 0
        self._pending = 0
        self._dirty = False
        segments = self.segments()
        for start, path in segments:
            records = read_wal_records(path, repair=True)
            if records:
                self.last_seq = max(self.last_seq, records[-1].seq)
            else:
                self.last_seq = max(self.last_seq, start - 1)
        if segments:
            self._path = segments[-1][1]
            self._file = open(self._path, "ab")
            self._mark_committed()
        else:
            self._open_segment(1)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(self, payload: dict) -> int:
        """Buffer one record; returns its sequence number.

        The record is **not** durable until :meth:`commit` runs — that is
        the point: a request batch appends every applied event and commits
        once, so the fsync cost is paid per request, not per event.
        """
        if self._file is None:
            raise PersistError("the write-ahead log is closed")
        self._fire(WAL_APPEND)
        if self._dirty:
            self._rewind()
        self.last_seq += 1
        record = dict(payload)
        record["seq"] = self.last_seq
        data = json.dumps(
            record, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
        try:
            self._file.write(_HEADER.pack(len(data), zlib.crc32(data)))
            self._file.write(data)
        except BaseException:
            self._dirty = True
            raise
        self._pending += 1
        self.appended += 1
        return self.last_seq

    def commit(self) -> None:
        """Flush buffered appends; fsync when configured.  The commit point.

        If the flush or fsync raises, nothing buffered since the last
        successful commit counts as durable: the log goes *dirty* and the
        next write rewinds to the committed offset first (see the class
        docstring), so a half-flushed tail can never be extended.
        """
        if self._file is None:
            return
        if self._dirty:
            self._rewind()
        if not self._pending:
            return
        try:
            self._fire(WAL_COMMIT)
            self._file.flush()
            if self.fsync:
                self._fire(WAL_FSYNC)
                os.fsync(self._file.fileno())
        except BaseException:
            self._dirty = True
            raise
        self._mark_committed()
        self.commits += 1

    def rotate(self) -> Path:
        """Start a fresh segment (the step after writing a snapshot).

        Everything appended afterwards lands in the new file, so segments
        older than the snapshot hold only covered records and can be
        pruned; crashing between snapshot, rotate and prune is safe at
        every point — recovery filters replay by sequence number.
        """
        self.commit()
        self._file.close()
        self._open_segment(self.last_seq + 1)
        return self._path

    def prune(self, through_seq: int) -> List[Path]:
        """Delete segments whose records are all ``<= through_seq``.

        A segment is fully covered when the *next* segment starts at or
        below ``through_seq + 1``.  The active segment is never deleted.
        Returns the removed paths.
        """
        removed: List[Path] = []
        segments = self.segments()
        for (start, path), (next_start, _) in zip(segments, segments[1:]):
            if path != self._path and next_start <= through_seq + 1:
                path.unlink()
                removed.append(path)
        return removed

    def close(self) -> None:
        """Commit and close the active segment.  Idempotent.

        The file handle is released even when the final commit raises —
        a log on a failing disk must still close cleanly.
        """
        if self._file is not None:
            try:
                self.commit()
            finally:
                file, self._file = self._file, None
                try:
                    file.close()
                except OSError:
                    pass

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def segments(self) -> List[Tuple[int, Path]]:
        """``(first_seq, path)`` of every segment, oldest first."""
        found = []
        for path in self.directory.iterdir():
            start = _segment_start(path)
            if start is not None:
                found.append((start, path))
        return sorted(found)

    def records(self, after_seq: int = 0) -> List[WalRecord]:
        """Every committed record with ``seq > after_seq``, in order."""
        result: List[WalRecord] = []
        for _, path in self.segments():
            for record in read_wal_records(path):
                if record.seq > after_seq:
                    result.append(record)
        return result

    def stats(self) -> dict:
        """Counters for the session health block."""
        return {
            "last_seq": self.last_seq,
            "segments": len(self.segments()),
            "appended": self.appended,
            "commits": self.commits,
            "rewinds": self.rewinds,
            "dirty": self._dirty,
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _open_segment(self, first_seq: int) -> None:
        self._path = self.directory / _SEGMENT_FORMAT.format(seq=first_seq)
        self._file = open(self._path, "ab")
        self._mark_committed()

    def _fire(self, site: str) -> None:
        """Fire an injection site; a ``kill`` rule degrades to ``raise``."""
        if self._faults is not None and self._faults.fire(site) is not None:
            raise FaultInjected(f"injected fault at {site}")

    def _mark_committed(self) -> None:
        """Record the current end of the active segment as durable."""
        self._committed_offset = self._file.tell()
        self._committed_seq = self.last_seq
        self._pending = 0
        self._dirty = False

    def _rewind(self) -> None:
        """Truncate the active segment back to the last committed offset.

        Runs before the first write after a failed commit: whatever the
        failed flush left on disk past the committed offset is discarded
        and the sequence counter rewinds with it, so re-logged events
        reuse the abandoned sequence numbers and replay stays gapless.
        """
        try:
            self._file.close()
        except OSError:
            pass
        with open(self._path, "r+b") as handle:
            handle.truncate(self._committed_offset)
        self._file = open(self._path, "ab")
        self.last_seq = self._committed_seq
        self._pending = 0
        self._dirty = False
        self.rewinds += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog({self.directory}, seq={self.last_seq}, "
            f"fsync={self.fsync})"
        )
