"""Versioned, atomically written, corruption-tolerant state snapshots.

A snapshot file (``snapshot-<wal_seq>.json``) captures a full
:meth:`~repro.stream.StreamingEngine.export_state` document together with
the write-ahead-log sequence number it covers, a format version and a
CRC-32 over the canonical state encoding.  Writes go through a temp file
+ ``fsync`` + ``os.replace`` so a crash mid-checkpoint leaves either the
old snapshot or the new one, never a half-written file; reads walk the
retained snapshots newest-first and silently skip any that fail the
format, CRC or JSON checks, so one corrupted file degrades recovery to
the previous checkpoint instead of failing it.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..faults.plan import SNAPSHOT_REPLACE, FaultInjected, FaultPlan

__all__ = ["SnapshotStore"]

#: Bumped when the state document's shape changes incompatibly.
FORMAT_VERSION = 1

_SNAPSHOT_FORMAT = "snapshot-{seq:012d}.json"
_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".json"


def _canonical(state: dict) -> bytes:
    """The byte string the snapshot CRC is computed over."""
    return json.dumps(
        state, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


class SnapshotStore:
    """The retained snapshot files of one persisted session directory.

    Parameters
    ----------
    directory:
        Where the ``snapshot-*.json`` files live (created if missing).
    keep:
        Snapshots retained after a write; older ones are pruned.  Keeping
        more than one is what makes a corrupted newest snapshot a
        degradation (recover from the previous one plus a longer WAL
        tail) rather than a data loss.
    fsync:
        Whether writes fsync the temp file before the atomic rename.
    faults:
        Optional :class:`repro.faults.FaultPlan`; when set, the store
        fires the ``snapshot.replace`` injection site just before the
        atomic ``os.replace`` — the last point a checkpoint can fail
        while still leaving the previous snapshot intact.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        keep: int = 2,
        fsync: bool = True,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.fsync = fsync
        self._faults = faults
        self.written = 0

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def write(self, seq: int, state: dict) -> Path:
        """Durably write the snapshot covering WAL records ``<= seq``."""
        path = self.directory / _SNAPSHOT_FORMAT.format(seq=seq)
        document = {
            "format": FORMAT_VERSION,
            "seq": seq,
            "crc": zlib.crc32(_canonical(state)),
            "state": state,
        }
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(document, handle, allow_nan=False)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            if self._faults is not None and self._faults.fire(SNAPSHOT_REPLACE):
                raise FaultInjected(f"injected fault at {SNAPSHOT_REPLACE}")
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self.written += 1
        self.prune()
        return path

    def prune(self) -> List[Path]:
        """Drop all but the ``keep`` newest snapshots; returns the removals."""
        paths = self.paths()
        removed = []
        for _, path in paths[: max(0, len(paths) - self.keep)]:
            path.unlink()
            removed.append(path)
        return removed

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def paths(self) -> List[Tuple[int, Path]]:
        """``(seq, path)`` of every snapshot file, oldest first."""
        found = []
        for path in self.directory.iterdir():
            name = path.name
            if not (
                name.startswith(_SNAPSHOT_PREFIX)
                and name.endswith(_SNAPSHOT_SUFFIX)
            ):
                continue
            try:
                seq = int(name[len(_SNAPSHOT_PREFIX) : -len(_SNAPSHOT_SUFFIX)])
            except ValueError:
                continue
            found.append((seq, path))
        return sorted(found)

    def latest(self) -> Optional[Tuple[int, dict]]:
        """The newest *valid* snapshot as ``(seq, state)``, else ``None``.

        Walks newest-first; a snapshot failing the JSON parse, format
        version, sequence or CRC checks is skipped — falling back to an
        older checkpoint is always correct because the WAL replays the
        difference.
        """
        for seq, path in reversed(self.paths()):
            state = self._load(seq, path)
            if state is not None:
                return seq, state
        return None

    def _load(self, seq: int, path: Path) -> Optional[dict]:
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
            if document.get("format") != FORMAT_VERSION:
                return None
            if int(document["seq"]) != seq:
                return None
            state = document["state"]
            if zlib.crc32(_canonical(state)) != int(document["crc"]):
                return None
            return state
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SnapshotStore({self.directory}, keep={self.keep})"
