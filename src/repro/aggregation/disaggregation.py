"""Disaggregation: distributing an aggregate assignment to its members.

The value of flex-offer aggregation (Scenario 1 of the paper) rests on the
ability to *disaggregate*: once the scheduler or the market fixes an
assignment for the aggregated flex-offer, every original prosumer needs a
valid assignment of its own flex-offer such that the member assignments sum
back to the aggregate assignment column by column.

The algorithm for start-aligned aggregates works in three steps:

1. the common start shift of the aggregate is applied to every member;
2. every column's energy is split among the member slices covering it,
   greedily within each member's slice ranges (always feasible, because each
   aggregate slice is the Minkowski sum of the member slices it covers);
3. a repair pass transfers energy between members *inside the same column*
   (keeping every column sum intact) until every member's total energy lies
   within its ``[cmin, cmax]``; if no feasible transfer remains a
   :class:`DisaggregationError` is raised.
"""

from __future__ import annotations

from ..core.assignment import Assignment
from ..core.errors import DisaggregationError
from ..core.flexoffer import FlexOffer
from ..core.slices import EnergySlice
from .base import AggregatedFlexOffer

__all__ = ["disaggregate"]


def _split_column(amount: int, bounds: list[EnergySlice]) -> list[int]:
    """Split ``amount`` into one value per bound, greedily left to right."""
    values = [bound.amin for bound in bounds]
    surplus = amount - sum(values)
    if surplus < 0:
        raise DisaggregationError(
            f"column amount {amount} below the sum of member minima {sum(values)}"
        )
    for index, bound in enumerate(bounds):
        if surplus <= 0:
            break
        take = min(bound.amax - values[index], surplus)
        values[index] += take
        surplus -= take
    if surplus > 0:
        raise DisaggregationError(
            f"column amount {amount} exceeds the sum of member maxima"
        )
    return values


def _transfer_within_columns(
    members: tuple[FlexOffer, ...],
    offsets: tuple[int, ...],
    bounds: list[tuple[EnergySlice, ...]],
    member_values: list[list[int]],
) -> None:
    """Move energy between members sharing a column until totals are feasible.

    Transfers keep every column sum unchanged, so the disaggregated
    assignments always add up to the aggregate assignment; only the split of
    each column between members changes.
    """
    column_members: dict[int, list[int]] = {}
    for member_index, (member, offset) in enumerate(zip(members, offsets)):
        for slice_index in range(member.duration):
            column_members.setdefault(offset + slice_index, []).append(member_index)

    for _ in range(len(members) * max(1, len(column_members))):
        totals = [sum(values) for values in member_values]
        over = [i for i, member in enumerate(members) if totals[i] > member.cmax]
        under = [i for i, member in enumerate(members) if totals[i] < member.cmin]
        if not over and not under:
            return
        progressed = False
        # Members above cmax hand energy to column-mates that can absorb it;
        # members below cmin receive energy from column-mates that can spare it.
        for donors, receivers_needed in ((over, False), (under, True)):
            for donor in donors:
                need = (
                    members[donor].cmin - sum(member_values[donor])
                    if receivers_needed
                    else sum(member_values[donor]) - members[donor].cmax
                )
                if need <= 0:
                    continue
                offset = offsets[donor]
                for slice_index in range(members[donor].duration):
                    if need <= 0:
                        break
                    column = offset + slice_index
                    for other in column_members.get(column, []):
                        if other == donor or need <= 0:
                            continue
                        other_slice_index = column - offsets[other]
                        donor_value = member_values[donor][slice_index]
                        other_value = member_values[other][other_slice_index]
                        donor_bound = bounds[donor][slice_index]
                        other_bound = bounds[other][other_slice_index]
                        other_total = sum(member_values[other])
                        if receivers_needed:
                            # donor must gain energy; the other member gives it up.
                            transferable = min(
                                donor_bound.amax - donor_value,
                                other_value - other_bound.amin,
                                other_total - members[other].cmin,
                                need,
                            )
                            if transferable > 0:
                                member_values[donor][slice_index] += transferable
                                member_values[other][other_slice_index] -= transferable
                                need -= transferable
                                progressed = True
                        else:
                            # donor must shed energy; the other member absorbs it.
                            transferable = min(
                                donor_value - donor_bound.amin,
                                other_bound.amax - other_value,
                                members[other].cmax - other_total,
                                need,
                            )
                            if transferable > 0:
                                member_values[donor][slice_index] -= transferable
                                member_values[other][other_slice_index] += transferable
                                need -= transferable
                                progressed = True
        if not progressed:
            break

    totals = [sum(values) for values in member_values]
    for member, total in zip(members, totals):
        if not member.cmin <= total <= member.cmax:
            raise DisaggregationError(
                f"cannot satisfy the total constraints of member {member.name!r}: "
                f"total {total} outside [{member.cmin}, {member.cmax}]"
            )


def disaggregate(
    aggregated: AggregatedFlexOffer, assignment: Assignment
) -> list[Assignment]:
    """Disaggregate an assignment of the aggregate into member assignments.

    Parameters
    ----------
    aggregated:
        The aggregate produced by
        :func:`repro.aggregation.alignment.aggregate_start_aligned`.
    assignment:
        A valid assignment of ``aggregated.flex_offer``.

    Returns
    -------
    list[Assignment]
        One valid assignment per member, in member order; their series sum to
        the aggregate assignment column by column (and therefore in total).

    Raises
    ------
    DisaggregationError
        If the assignment does not belong to the aggregate or no feasible
        split exists.
    """
    aggregate = aggregated.flex_offer
    if assignment.flex_offer is not aggregate and assignment.flex_offer != aggregate:
        raise DisaggregationError(
            "the assignment does not instantiate the aggregated flex-offer"
        )
    shift = assignment.start_time - aggregate.earliest_start

    members = aggregated.members
    offsets = aggregated.member_offsets
    bounds = [member.effective_slice_bounds() for member in members]

    # Which (member, slice) pairs cover each column, in member order.
    column_owners: dict[int, list[tuple[int, int]]] = {}
    for member_index, (member, offset) in enumerate(zip(members, offsets)):
        for slice_index in range(member.duration):
            column_owners.setdefault(offset + slice_index, []).append(
                (member_index, slice_index)
            )

    member_values: list[list[int]] = [[0] * member.duration for member in members]
    for column, owners in sorted(column_owners.items()):
        amount = int(assignment.values[column]) if column < len(assignment.values) else 0
        owner_bounds = [bounds[m][s] for m, s in owners]
        split = _split_column(amount, owner_bounds)
        for (member_index, slice_index), value in zip(owners, split):
            member_values[member_index][slice_index] = value

    _transfer_within_columns(members, offsets, bounds, member_values)

    assignments: list[Assignment] = []
    for member, offset, values in zip(members, offsets, member_values):
        start = member.earliest_start + shift
        assignments.append(Assignment(member, start, tuple(values)))
    return assignments
