"""Flex-offer aggregation and disaggregation (Scenario 1 of the paper)."""

from .alignment import aggregate_all, aggregate_start_aligned
from .balance import BalanceAggregationResult, balance_aggregate, expected_total_energy
from .base import AggregatedFlexOffer, align_profiles
from .disaggregation import disaggregate
from .grouping import (
    GroupingParameters,
    grid_key,
    group_all_together,
    group_by_grid,
    group_by_kind,
    group_fixed_size,
)
from .loss import AggregationLossReport, aggregation_loss, compare_strategies

__all__ = [
    "AggregatedFlexOffer",
    "align_profiles",
    "aggregate_start_aligned",
    "aggregate_all",
    "balance_aggregate",
    "BalanceAggregationResult",
    "expected_total_energy",
    "disaggregate",
    "GroupingParameters",
    "grid_key",
    "group_by_grid",
    "group_all_together",
    "group_fixed_size",
    "group_by_kind",
    "AggregationLossReport",
    "aggregation_loss",
    "compare_strategies",
]
