"""Flexibility-loss accounting for aggregation.

Scenario 1 of the paper: "For all the aggregation techniques, it is essential
to quantify and then to minimize flexibility losses, and therefore a
flexibility measure is needed."  This module quantifies exactly that: it
evaluates a set of flex-offers before aggregation and the resulting
aggregates after aggregation under any selection of the paper's measures and
reports absolute and relative losses per measure.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Optional, Union

from ..core.flexoffer import FlexOffer
from ..measures.base import FlexibilityMeasure
from ..measures.setwise import MeasureSpec, compare_sets
from .base import AggregatedFlexOffer

__all__ = ["AggregationLossReport", "aggregation_loss", "compare_strategies"]


@dataclass(frozen=True)
class AggregationLossReport:
    """Per-measure flexibility loss of one aggregation run."""

    #: Number of flex-offers before aggregation.
    original_count: int
    #: Number of aggregates after aggregation.
    aggregate_count: int
    #: ``{measure_key: {"before", "after", "loss", "retained"}}``.
    per_measure: dict[str, dict[str, float]]

    def retained(self, measure_key: str) -> float:
        """Fraction of flexibility retained under one measure (1.0 = no loss)."""
        return self.per_measure[measure_key]["retained"]

    def loss(self, measure_key: str) -> float:
        """Absolute flexibility loss under one measure."""
        return self.per_measure[measure_key]["loss"]

    @property
    def compression(self) -> float:
        """Reduction factor of the number of flex-offers (the aggregation benefit)."""
        if self.aggregate_count == 0:
            return float("inf") if self.original_count else 1.0
        return self.original_count / self.aggregate_count


def aggregation_loss(
    originals: Sequence[FlexOffer],
    aggregates: Sequence[Union[AggregatedFlexOffer, FlexOffer]],
    measures: Optional[Iterable[MeasureSpec]] = None,
) -> AggregationLossReport:
    """Quantify the flexibility lost by an aggregation run.

    Parameters
    ----------
    originals:
        The flex-offers before aggregation.
    aggregates:
        The aggregation output — either :class:`AggregatedFlexOffer` wrappers
        or plain aggregate flex-offers.
    measures:
        Measure keys or instances; defaults to every registered measure that
        supports both sets (unsupported measures are skipped, mirroring the
        Section 4 guidance on mixed aggregates).
    """
    aggregate_offers = [
        item.flex_offer if isinstance(item, AggregatedFlexOffer) else item
        for item in aggregates
    ]
    per_measure = compare_sets(list(originals), aggregate_offers, measures)
    return AggregationLossReport(len(originals), len(aggregate_offers), per_measure)


def compare_strategies(
    originals: Sequence[FlexOffer],
    strategies: dict[str, Sequence[Union[AggregatedFlexOffer, FlexOffer]]],
    measures: Optional[Iterable[MeasureSpec]] = None,
) -> dict[str, AggregationLossReport]:
    """Evaluate several aggregation strategies against the same original set.

    Returns one :class:`AggregationLossReport` per strategy name — the data
    behind the E-AGG benchmark table (retained flexibility per measure and
    per strategy).
    """
    return {
        name: aggregation_loss(originals, aggregates, measures)
        for name, aggregates in strategies.items()
    }
