"""Balance-aware aggregation (Valsomatzis et al., DARE 2014 [14]).

The TotalFlex project uses aggregation not only to reduce the number of
flex-offers but also to *partially handle the balancing task*: pairing
consumption (positive) with production (negative) flex-offers so the
aggregate's total energy is close to zero.  The resulting aggregates are
typically **mixed** flex-offers — which is exactly why Section 4 of the paper
argues that measures unable to express mixed flex-offers (the area-based
ones) are inappropriate for this scenario, while the vector and assignment
measures remain applicable.

The implementation is a greedy bipartite pairing: consumption and production
flex-offers are sorted by the magnitude of their expected total energy and
matched largest-against-largest; leftovers are grouped among themselves.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.flexoffer import FlexOffer
from .alignment import aggregate_start_aligned
from .base import AggregatedFlexOffer

__all__ = ["BalanceAggregationResult", "balance_aggregate", "expected_total_energy"]


def expected_total_energy(flex_offer: FlexOffer) -> float:
    """The midpoint of the flex-offer's total energy range.

    Used as the single-number summary of how much energy the flex-offer is
    expected to add to (positive) or remove from (negative) the grid.
    """
    return (flex_offer.cmin + flex_offer.cmax) / 2.0


@dataclass(frozen=True)
class BalanceAggregationResult:
    """Outcome of balance-aware aggregation."""

    #: The aggregates, each pairing consumption with production where possible.
    aggregates: tuple[AggregatedFlexOffer, ...]
    #: Expected total energy (sum of member midpoints) per aggregate.
    expected_imbalance: tuple[float, ...]

    @property
    def total_expected_imbalance(self) -> float:
        """Absolute expected imbalance summed over all aggregates."""
        return sum(abs(value) for value in self.expected_imbalance)

    @property
    def mixed_count(self) -> int:
        """How many aggregates came out as mixed flex-offers."""
        return sum(
            1 for aggregate in self.aggregates if aggregate.flex_offer.is_mixed
        )


def balance_aggregate(
    flex_offers: Sequence[FlexOffer],
    pair_size: int = 2,
) -> BalanceAggregationResult:
    """Aggregate flex-offers so that aggregates are as balanced as possible.

    Parameters
    ----------
    flex_offers:
        Any mix of consumption and production flex-offers.
    pair_size:
        How many flex-offers of *each* sign may be combined into one
        aggregate before a new aggregate is started (1 pairs one consumer
        with one producer; larger values build bigger balanced blocks).

    Returns
    -------
    BalanceAggregationResult
        Aggregates whose expected total energy is driven towards zero.
    """
    consumers = sorted(
        (f for f in flex_offers if expected_total_energy(f) >= 0),
        key=lambda f: -abs(expected_total_energy(f)),
    )
    producers = sorted(
        (f for f in flex_offers if expected_total_energy(f) < 0),
        key=lambda f: -abs(expected_total_energy(f)),
    )
    groups: list[list[FlexOffer]] = []
    while consumers and producers:
        group: list[FlexOffer] = []
        for _ in range(max(1, pair_size)):
            if consumers:
                group.append(consumers.pop(0))
            if producers:
                group.append(producers.pop(0))
        groups.append(group)
    for leftovers in (consumers, producers):
        for start in range(0, len(leftovers), max(1, pair_size)):
            chunk = leftovers[start:start + max(1, pair_size)]
            if chunk:
                groups.append(list(chunk))

    aggregates = tuple(
        aggregate_start_aligned(group, name=f"balanced-{index}")
        for index, group in enumerate(groups)
    )
    imbalance = tuple(
        sum(expected_total_energy(member) for member in aggregate.members)
        for aggregate in aggregates
    )
    return BalanceAggregationResult(aggregates, imbalance)
