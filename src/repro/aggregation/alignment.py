"""Start-alignment aggregation (Šikšnys et al., SSDBM 2012 [15]).

The classic flex-offer aggregation scheme aligns every member at its earliest
start time and sums the per-column energy ranges (a Minkowski sum).  The
aggregate keeps

* **time flexibility** equal to the *minimum* of the members' time
  flexibilities (all members must be able to shift together by the common
  offset), and
* **energy flexibility** equal to the sum of the members' energy
  flexibilities (total constraints are added).

Both properties imply that aggregation can only lose flexibility relative to
the original set — quantifying that loss under the paper's measures is the
purpose of :mod:`repro.aggregation.loss` and the E-AGG experiment.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from ..core.errors import AggregationError
from ..core.flexoffer import FlexOffer
from ..core.slices import EnergySlice
from .base import AggregatedFlexOffer

__all__ = ["aggregate_start_aligned", "aggregate_all"]


def aggregate_start_aligned(
    members: Sequence[FlexOffer], name: Optional[str] = None
) -> AggregatedFlexOffer:
    """Aggregate a group of flex-offers by start alignment.

    Parameters
    ----------
    members:
        The flex-offers to aggregate (at least one).
    name:
        Optional name for the aggregate; defaults to
        ``"agg(<member names>)"``.

    Returns
    -------
    AggregatedFlexOffer
        The aggregate plus the bookkeeping required for disaggregation.

    Notes
    -----
    The aggregate's start-time interval is anchored at the earliest member
    start; its width is ``min_i tf(member_i)`` so that any common shift keeps
    every member inside its own start-time interval.  Columns not covered by
    a member contribute the inflexible slice ``[0, 0]``.  The summed per-column
    ranges use every member's *effective* slice bounds (the values reachable
    under the member's own total constraints), so the aggregate never promises
    a column amount that no combination of valid member assignments can
    deliver — this is what keeps aggregate assignments disaggregatable.
    """
    from ..backend.dispatch import get_backend

    members = tuple(members)
    if not members:
        raise AggregationError("cannot aggregate an empty set of flex-offers")
    anchor, offsets, column_bounds = get_backend().aggregate_columns(members)
    aggregated_slices = [EnergySlice(amin, amax) for amin, amax in column_bounds]
    common_time_flexibility = min(member.time_flexibility for member in members)
    total_min = sum(member.cmin for member in members)
    total_max = sum(member.cmax for member in members)
    label = name or "agg(" + ",".join(
        member.name or f"member{index}" for index, member in enumerate(members)
    ) + ")"
    aggregate = FlexOffer(
        anchor,
        anchor + common_time_flexibility,
        tuple(aggregated_slices),
        total_min,
        total_max,
        label,
    )
    return AggregatedFlexOffer(aggregate, members, tuple(offsets))


def aggregate_all(
    groups: Sequence[Sequence[FlexOffer]], prefix: str = "aggregate"
) -> list[AggregatedFlexOffer]:
    """Aggregate every group in a partition of flex-offers.

    Convenience wrapper used by the grouping strategies and the benchmarks:
    each group is aggregated with :func:`aggregate_start_aligned` and named
    ``"<prefix>-<index>"``.
    """
    aggregates = []
    for index, group in enumerate(groups):
        aggregates.append(aggregate_start_aligned(group, name=f"{prefix}-{index}"))
    return aggregates
