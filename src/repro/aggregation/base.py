"""Aggregation primitives: the aggregated flex-offer and its bookkeeping.

Scenario 1 of the paper motivates *flex-offer aggregation*: combining many
small flex-offers into fewer, larger ones to reduce scheduling complexity and
to create tradable commodities (Scenario 2), while "retaining as much as
possible of their flexibility".  An aggregated flex-offer is itself a regular
:class:`~repro.core.flexoffer.FlexOffer`, so every flexibility measure applies
to it unchanged; this module adds the bookkeeping needed to later
*disaggregate* an assignment of the aggregate back to its members
(Šikšnys et al., SSDBM 2012 [15]).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..core.errors import AggregationError
from ..core.flexoffer import FlexOffer
from ..core.slices import EnergySlice

__all__ = ["AggregatedFlexOffer", "align_profiles"]


@dataclass(frozen=True)
class AggregatedFlexOffer:
    """An aggregated flex-offer together with its member bookkeeping.

    Attributes
    ----------
    flex_offer:
        The aggregate itself — an ordinary flex-offer, usable with every
        measure, scheduler and market primitive in the library.
    members:
        The original flex-offers that were aggregated.
    member_offsets:
        For each member, the offset (in time units) of its own earliest start
        relative to the aggregate's earliest start.  When the aggregate is
        assigned a start time ``T``, member ``i`` starts at
        ``T + member_offsets[i]``.
    """

    flex_offer: FlexOffer
    members: tuple[FlexOffer, ...]
    member_offsets: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.members) != len(self.member_offsets):
            raise AggregationError(
                f"{len(self.members)} members but {len(self.member_offsets)} offsets"
            )
        if not self.members:
            raise AggregationError("an aggregated flex-offer needs at least one member")

    @property
    def size(self) -> int:
        """Number of member flex-offers."""
        return len(self.members)

    def member_start(self, aggregate_start: int, index: int) -> int:
        """The start time of member ``index`` for a given aggregate start time."""
        return aggregate_start + self.member_offsets[index]

    def describe(self) -> dict[str, object]:
        """A serialisable summary of the aggregate."""
        return {
            "name": self.flex_offer.name,
            "members": [member.name for member in self.members],
            "member_offsets": list(self.member_offsets),
            "time_flexibility": self.flex_offer.time_flexibility,
            "energy_flexibility": self.flex_offer.energy_flexibility,
        }


def align_profiles(
    members: Sequence[FlexOffer],
) -> tuple[int, list[int], list[list[EnergySlice]]]:
    """Align member profiles on an absolute time grid anchored at the earliest start.

    Every member is assumed to start at its own earliest start time; the
    anchor of the aggregate is the minimum of those.  Returns the anchor, the
    per-member offsets from the anchor, and — per grid column — the list of
    member slices that cover that column.
    """
    if not members:
        raise AggregationError("cannot align an empty set of flex-offers")
    anchor = min(member.earliest_start for member in members)
    offsets = [member.earliest_start - anchor for member in members]
    horizon = max(
        offset + member.duration for offset, member in zip(offsets, members)
    )
    columns: list[list[EnergySlice]] = [[] for _ in range(horizon)]
    for offset, member in zip(offsets, members):
        for index, energy_slice in enumerate(member.slices):
            columns[offset + index].append(energy_slice)
    return anchor, offsets, columns
