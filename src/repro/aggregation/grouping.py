"""Grouping strategies for flex-offer aggregation.

Aggregating arbitrary flex-offers together destroys flexibility: the
aggregate's time flexibility is the *minimum* of the members' (see
:mod:`repro.aggregation.alignment`), so one inflexible member ruins the whole
group.  The SSDBM 2012 aggregation framework [15] therefore first *groups*
flex-offers whose time parameters are similar, controlled by tolerances on
the earliest start time and the time flexibility, and only aggregates within
a group.  This module implements that grid-based grouping plus simple
baselines (one big group, fixed-size bins) used by the aggregation-loss
experiment to show how grouping affects retained flexibility.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.errors import AggregationError
from ..core.flexoffer import FlexOffer

__all__ = [
    "GroupingParameters",
    "grid_key",
    "group_by_grid",
    "group_all_together",
    "group_fixed_size",
    "group_by_kind",
]


@dataclass(frozen=True)
class GroupingParameters:
    """Tolerances of the grid-based grouping.

    Attributes
    ----------
    earliest_start_tolerance:
        Width (in time units) of the grid cells along the earliest-start-time
        axis; flex-offers whose ``tes`` falls into the same cell may be
        grouped.  The SSDBM paper calls this the EST tolerance.
    time_flexibility_tolerance:
        Width of the grid cells along the time-flexibility axis (TFT
        tolerance); bounding how much time flexibility can differ within a
        group limits the loss from taking the group minimum.
    max_group_size:
        Optional upper bound on members per group (e.g. a market lot size).
        ``0`` means unbounded.
    """

    earliest_start_tolerance: int = 2
    time_flexibility_tolerance: int = 2
    max_group_size: int = 0

    def __post_init__(self) -> None:
        if self.earliest_start_tolerance < 1:
            raise AggregationError("earliest_start_tolerance must be >= 1")
        if self.time_flexibility_tolerance < 1:
            raise AggregationError("time_flexibility_tolerance must be >= 1")
        if self.max_group_size < 0:
            raise AggregationError("max_group_size must be >= 0")


def grid_key(flex_offer: FlexOffer, parameters: GroupingParameters) -> tuple[int, int]:
    """The grid cell of a flex-offer under the grouping tolerances.

    Exposed publicly so the streaming engine's online index buckets offers
    into exactly the cells that :func:`group_by_grid` would — the batch and
    incremental paths must agree cell for cell.
    """
    return (
        flex_offer.earliest_start // parameters.earliest_start_tolerance,
        flex_offer.time_flexibility // parameters.time_flexibility_tolerance,
    )


def group_by_grid(
    flex_offers: Sequence[FlexOffer],
    parameters: GroupingParameters = GroupingParameters(),
) -> list[list[FlexOffer]]:
    """Partition flex-offers into groups of similar ``tes`` and ``tf``.

    Flex-offers are bucketed on a two-dimensional grid whose cell widths are
    the grouping tolerances; each non-empty cell becomes a group, optionally
    split further to respect ``max_group_size``.  Group order is
    deterministic (sorted by grid key) so experiments are reproducible.
    """
    buckets: dict[tuple[int, int], list[FlexOffer]] = {}
    for flex_offer in flex_offers:
        buckets.setdefault(grid_key(flex_offer, parameters), []).append(flex_offer)
    groups: list[list[FlexOffer]] = []
    for key in sorted(buckets):
        members = buckets[key]
        if parameters.max_group_size and len(members) > parameters.max_group_size:
            for start in range(0, len(members), parameters.max_group_size):
                groups.append(members[start:start + parameters.max_group_size])
        else:
            groups.append(members)
    return groups


def group_all_together(flex_offers: Sequence[FlexOffer]) -> list[list[FlexOffer]]:
    """The naive baseline: a single group containing every flex-offer."""
    members = list(flex_offers)
    return [members] if members else []


def group_fixed_size(
    flex_offers: Sequence[FlexOffer], group_size: int
) -> list[list[FlexOffer]]:
    """Baseline grouping into consecutive fixed-size bins (input order)."""
    if group_size < 1:
        raise AggregationError(f"group_size must be >= 1, got {group_size}")
    members = list(flex_offers)
    return [
        members[start:start + group_size] for start in range(0, len(members), group_size)
    ]


def group_by_kind(flex_offers: Sequence[FlexOffer]) -> list[list[FlexOffer]]:
    """Group by sign class (consumption / production / mixed).

    Keeping consumption and production apart ensures the aggregates are not
    mixed flex-offers, so the area-based measures remain applicable to them
    (Section 4 of the paper).
    """
    by_kind: dict[str, list[FlexOffer]] = {}
    for flex_offer in flex_offers:
        by_kind.setdefault(flex_offer.kind.value, []).append(flex_offer)
    return [by_kind[key] for key in sorted(by_kind)]
