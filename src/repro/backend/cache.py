"""Fingerprint-keyed cache of packed population representations.

Packing a population into a :class:`~repro.backend.matrix.ProfileMatrix` is
a pure-Python sweep over every offer and every slice — for stable
populations evaluated repeatedly (a dashboard polling ``evaluate_set``, a
scheduler scoring candidate schedules against the same offers, the sharded
backend re-visiting its shards) it dominates the wall-clock of the
vectorized backends.  :class:`MatrixCache` memoises the packed matrix keyed
on the *content* of the population: the tuple of
:attr:`~repro.core.flexoffer.FlexOffer.fingerprint` values in population
order.  Fingerprints are cached on the (frozen) offers themselves, so a key
is O(population) integer reads instead of an O(slices) packing pass.

Because the key derives from the population's content, a cached matrix can
never be *stale* — a changed population simply has a different key.
Invalidation therefore exists for memory hygiene: the bounded LRU evicts
cold entries on its own, and mutation sources (notably
:class:`~repro.stream.engine.StreamingEngine`) proactively
:meth:`~MatrixCache.discard` the entry of the population they are about to
mutate so dead matrices are released immediately instead of lingering until
eviction.

The cache is shared process-wide (:data:`matrix_cache`) and thread-safe: a
lock guards the LRU structure, and :func:`~repro.backend.use_backend`
contexts on different threads can interleave freely — the packed matrix for
a given population is identical whichever backend requested it first.

Knobs
-----
``REPRO_MATRIX_CACHE``
    Capacity (number of retained populations) of the process-wide cache.
    ``0`` disables caching entirely; unset means :data:`DEFAULT_CAPACITY`.

Caveat: a fingerprint is a 64-bit BLAKE2b digest of the offer's structure,
so two *different* offers aliasing a cache entry would require a digest
collision — not constructible in practice.  The library already treats
fingerprint equality as structural identity (the streaming grid index and
replay adapters key on it); the cache inherits that contract.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.flexoffer import FlexOffer

__all__ = [
    "MatrixCache",
    "matrix_cache",
    "cached_matrix",
    "matrix_weight",
    "ENV_CACHE_VAR",
    "DEFAULT_CAPACITY",
]

#: Environment variable holding the process-wide cache capacity.
ENV_CACHE_VAR = "REPRO_MATRIX_CACHE"

#: Retained populations when ``REPRO_MATRIX_CACHE`` is unset.  Sized for the
#: common shapes — a handful of whole populations plus one shard set — while
#: bounding worst-case retention (a cached matrix keeps its offers alive).
DEFAULT_CAPACITY = 32

#: Environment variable bounding total retained *weight* (packed slices).
ENV_CELL_VAR = "REPRO_MATRIX_CACHE_CELLS"

#: Total packed slices retained across all entries when
#: ``REPRO_MATRIX_CACHE_CELLS`` is unset.  An entry-count bound alone would
#: let 32 million-offer populations pin gigabytes; this caps retention by
#: size too (a matrix's arrays plus its offer tuple scale with its slice
#: count).  At 8M cells the worst case is a few hundred MB while still
#: holding several 1M-offer populations or a full shard set.
DEFAULT_CELL_BUDGET = 8_000_000


class MatrixCache:
    """A bounded, thread-safe, fingerprint-keyed LRU of packed matrices.

    Parameters
    ----------
    capacity:
        Maximum number of retained entries; ``0`` disables the cache (every
        :meth:`get` builds without storing).  ``None`` reads
        ``REPRO_MATRIX_CACHE`` and falls back to :data:`DEFAULT_CAPACITY`.
    cell_budget:
        Maximum total entry *weight* (packed slice count, reported by the
        caller's ``weigher``); bounds retained bytes, not just entry count.
        ``None`` reads ``REPRO_MATRIX_CACHE_CELLS`` and falls back to
        :data:`DEFAULT_CELL_BUDGET`.  An entry heavier than the whole
        budget is simply not retained.
    """

    def __init__(
        self, capacity: Optional[int] = None, cell_budget: Optional[int] = None
    ) -> None:
        from .dispatch import _env_int

        if capacity is None:
            environment = _env_int(ENV_CACHE_VAR, minimum=0)
            capacity = DEFAULT_CAPACITY if environment is None else environment
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        if cell_budget is None:
            environment = _env_int(ENV_CELL_VAR, minimum=0)
            cell_budget = (
                DEFAULT_CELL_BUDGET if environment is None else environment
            )
        if cell_budget < 0:
            raise ValueError(f"cell budget must be >= 0, got {cell_budget}")
        self.capacity = capacity
        self.cell_budget = cell_budget
        self._lock = threading.Lock()
        self._bypass_depth = 0
        self._weight = 0
        self._entries: "OrderedDict[tuple, tuple[object, int]]" = OrderedDict()
        #: Monotonic counter, bumped on every successful store.  Mutation
        #: sources use it to skip the O(population) key computation when no
        #: entry can possibly concern them (nothing was cached since their
        #: last mutation).
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # Keys
    # ------------------------------------------------------------------ #
    @staticmethod
    def key_of(flex_offers: Iterable["FlexOffer"]) -> tuple:
        """The cache key of a population: ``(fingerprint, name)`` per offer.

        The name rides along because fingerprints are deliberately
        name-blind while a cached matrix hands its ``offers`` tuple to
        name-visible extension points (an overridden ``supports``, custom
        ``batch_values`` hooks): a structurally identical but renamed
        population must not be served another population's offer objects.
        """
        return tuple(
            (flex_offer.fingerprint, flex_offer.name) for flex_offer in flex_offers
        )

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def get(
        self,
        flex_offers: Sequence["FlexOffer"],
        builder: Callable[[Sequence["FlexOffer"]], object],
        weigher: Optional[Callable[[object], int]] = None,
    ) -> object:
        """The cached value for the population, building (and storing) on miss.

        ``builder`` runs *outside* the lock — packing is the expensive part,
        and two threads racing on the same cold key at worst both build and
        one result wins.  A builder that raises (e.g. ``OverflowError`` for
        unpackable populations) stores nothing, so the caller's fallback
        path is re-attempted on every call, exactly like the uncached code.
        ``weigher`` reports the built value's size (packed slices) toward
        :attr:`cell_budget`; without one an entry weighs nothing.
        """
        if self.capacity == 0:
            return builder(flex_offers)
        key = self.key_of(flex_offers)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached[0]
            self.misses += 1
            bypassed = self._bypass_depth > 0
        built = builder(flex_offers)
        if bypassed:
            return built
        weight = int(weigher(built)) if weigher is not None else 0
        if weight > self.cell_budget:
            # Could never fit: storing it would only evict entries that do.
            return built
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:  # lost a build race: replace cleanly
                self._weight -= previous[1]
            self._entries[key] = (built, weight)
            self._weight += weight
            self.generation += 1
            while self._entries and (
                len(self._entries) > self.capacity
                or self._weight > self.cell_budget
            ):
                _, (_, evicted_weight) = self._entries.popitem(last=False)
                self._weight -= evicted_weight
                self.evictions += 1
        return built

    def peek(self, flex_offers: Sequence["FlexOffer"]) -> Optional[object]:
        """The cached value for the population, or ``None`` — never builds."""
        with self._lock:
            entry = self._entries.get(self.key_of(flex_offers))
            return entry[0] if entry is not None else None

    def put(self, key: tuple, value: object, weight: int = 0) -> bool:
        """Seed an externally built entry under a precomputed key.

        The streaming engine's publication path: a live, incrementally
        maintained packed matrix is stored so that subsequent bulk calls on
        the same population hit instead of re-packing.  Obeys the same
        bounds as :meth:`get`'s store path (capacity, cell budget, bypass
        windows) and bumps :attr:`generation`.  Returns whether the entry
        was retained.  Callers must hand over a value they will no longer
        mutate — cached entries are shared.
        """
        if self.capacity == 0:
            return False
        weight = int(weight)
        if weight > self.cell_budget:
            return False
        with self._lock:
            if self._bypass_depth > 0:
                return False
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._weight -= previous[1]
            self._entries[key] = (value, weight)
            self._weight += weight
            self.generation += 1
            while self._entries and (
                len(self._entries) > self.capacity
                or self._weight > self.cell_budget
            ):
                _, (_, evicted_weight) = self._entries.popitem(last=False)
                self._weight -= evicted_weight
                self.evictions += 1
        return True

    @contextmanager
    def bypass(self):
        """Serve hits but store nothing for the duration (one-shot inputs).

        Used by callers evaluating throwaway populations — the streaming
        engine's arrival batches, for instance — whose packed matrices
        would only occupy LRU capacity.  The suppression is a process-wide
        depth counter rather than context-local state because bulk backends
        fan work out to pool threads, where context variables would not
        propagate; a concurrent caller on another thread during the window
        merely loses a store (a future re-pack), never correctness.
        """
        with self._lock:
            self._bypass_depth += 1
        try:
            yield
        finally:
            with self._lock:
                self._bypass_depth -= 1

    # ------------------------------------------------------------------ #
    # Invalidation
    # ------------------------------------------------------------------ #
    def discard(self, flex_offers: Iterable["FlexOffer"]) -> bool:
        """Drop the entry for one population; ``True`` if one was present."""
        return self.discard_key(self.key_of(flex_offers))

    def discard_key(self, key: tuple) -> bool:
        """Drop the entry stored under a precomputed key."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._weight -= entry[1]
            return entry is not None

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped (stats survive)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._weight = 0
        return dropped

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, int]:
        """A snapshot of the counters (hits / misses / evictions / size)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "cell_budget": self.cell_budget,
                "size": len(self._entries),
                "weight": self._weight,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "generation": self.generation,
            }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MatrixCache({len(self._entries)}/{self.capacity} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


#: The process-wide cache shared by every matrix-building backend that was
#: not handed a session-scoped cache of its own.
matrix_cache = MatrixCache()


def matrix_weight(matrix) -> int:
    """An entry's weight toward ``cell_budget``: its packed slice count."""
    return int(matrix.offsets[-1]) if matrix.size else 0


def cached_matrix(
    flex_offers: Sequence["FlexOffer"], cache: Optional[MatrixCache] = None
):
    """The packed :class:`ProfileMatrix` of a population, via a cache.

    ``cache`` selects the store — a session-scoped :class:`MatrixCache`
    injected by the service layer, or (``None``) the process-wide
    :data:`matrix_cache`.  Imports :mod:`repro.backend.matrix` lazily so
    this module stays importable without NumPy (the streaming engine
    imports it for invalidation even when only the reference backend is
    registered).  Propagates the packer's ``OverflowError`` uncached,
    preserving the callers' fall-back-to-reference semantics.  Entries
    weigh their packed slice count, so retention is bounded in bytes
    (``cell_budget``), not just entries.
    """
    from .matrix import ProfileMatrix

    store = cache if cache is not None else matrix_cache
    return store.get(flex_offers, ProfileMatrix, weigher=matrix_weight)
