"""Compute-backend dispatch: registry, selection and the backend contract.

The measures, aggregation, assignment and streaming code all reduce to the
same handful of bulk operations over a population of flex-offers (per-offer
measure values, set combination, aligned column sums, feasible extreme
profiles, assignment feasibility, schedule-imbalance objectives).
:class:`ComputeBackend` names those
operations; concrete backends implement them either with the original
per-object Python code (``reference``) or with packed NumPy arrays
(``numpy``).  Callers never pick an implementation directly — they ask
:func:`get_backend` for the active one, which resolves, in order,

1. an explicit ``name`` argument (or an explicit backend *instance* — the
   session façade routes its privately configured backends this way),
2. the backend activated by the innermost :func:`use_backend` context
   (a registered name or, again, an unregistered instance),
3. the ``REPRO_BACKEND`` environment variable,
4. the ``reference`` backend.

There is deliberately no mutable process default: the pre-PR-5
``set_default_backend`` global (removed in v2.0) was a latent race under
the sharded backend's thread pool — a worker thread resolving
``get_backend()`` mid-operation could observe another thread's freshly
mutated default, in the worst case resolving *the sharded backend itself*
inside one of its own workers.  Scope a backend with
:class:`repro.service.FlexSession` or :func:`use_backend` instead.

Every backend must be *observationally equivalent* to the reference backend:
identical values on integer paths, identical within 1e-9 on float paths, and
the same :class:`~repro.core.errors.MeasureError` family raised on the same
inputs.  ``tests/backend/test_conformance.py`` pins that contract with
differential hypothesis properties.
"""

from __future__ import annotations

import abc
import os
import threading
from collections.abc import Sequence
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, ClassVar, Optional, Union

from ..core.errors import BackendError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.flexoffer import FlexOffer
    from ..measures.base import FlexibilityMeasure

__all__ = [
    "BackendSpec",
    "ComputeBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "use_backend",
    "ENV_VAR",
]

#: Environment variable naming the default backend for the process.
ENV_VAR = "REPRO_BACKEND"


def _warn_ignored_env(variable: str, value: str, expected: str) -> None:
    """Report a malformed environment knob that is being ignored.

    Shared by every backend-layer knob (matrix-cache capacity, shard count,
    executor kind, …): configuration is read at import or registry-bootstrap
    time, where raising would take down ``import repro`` or every
    :func:`get_backend` call over an unrelated backend's typo.
    """
    import warnings

    warnings.warn(
        f"ignoring invalid {variable}={value!r} (expected {expected}); "
        "using the default",
        RuntimeWarning,
        stacklevel=4,
    )


def _env_int(variable: str, minimum: int) -> Optional[int]:
    """An integer environment knob, or ``None`` when unset/invalid (warns)."""
    raw = os.environ.get(variable)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        value = minimum - 1
    if value < minimum:
        _warn_ignored_env(variable, raw, f"an integer >= {minimum}")
        return None
    return value


def _env_float(variable: str, minimum: float, maximum: float) -> Optional[float]:
    """A float environment knob in ``[minimum, maximum]``, or ``None`` (warns)."""
    raw = os.environ.get(variable)
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        value = minimum - 1.0
    if not minimum <= value <= maximum:
        _warn_ignored_env(variable, raw, f"a number in [{minimum}, {maximum}]")
        return None
    return value


class ComputeBackend(abc.ABC):
    """The bulk operations a compute backend must provide.

    The granularity is deliberately coarse — whole populations, not single
    flex-offers — because that is where a vectorizing backend can win; the
    per-object entry points (``measure.value``, ``Assignment``) never
    dispatch.
    """

    #: Stable backend identifier used by the registry and ``REPRO_BACKEND``.
    name: ClassVar[str] = ""

    # ------------------------------------------------------------------ #
    # Measures
    # ------------------------------------------------------------------ #
    def prepare(self, flex_offers: Sequence["FlexOffer"]):
        """An opaque population handle reusable across several bulk calls.

        Backends whose bulk operations share a packed representation return
        it here (the NumPy backend returns the cached
        :class:`~repro.backend.matrix.ProfileMatrix`), so a caller issuing
        several measure operations against the same population — notably
        the sharded backend's per-shard workers — pays the packing/keying
        cost once.  The default returns the sequence unchanged; every
        ``measure_*`` operation must accept the returned handle wherever it
        accepts a population.
        """
        return flex_offers

    @abc.abstractmethod
    def measure_values(
        self, measure: "FlexibilityMeasure", flex_offers: Sequence["FlexOffer"]
    ) -> list[float]:
        """Per-offer values of one measure, in population order."""

    def measure_set_value(
        self, measure: "FlexibilityMeasure", flex_offers: Sequence["FlexOffer"]
    ) -> float:
        """Set value of one measure: per-offer values + ``combine_values``."""
        return measure.combine_values(self.measure_values(measure, flex_offers))

    @staticmethod
    def _overrides_set_value(measure: "FlexibilityMeasure") -> bool:
        """Whether a measure subclass replaced the default ``set_value``.

        ``evaluate_population`` implementations may only inline the
        per-offer-values + ``combine_values`` decomposition for the default
        ``set_value``; a measure that overrides the method (a public
        extension point) must be evaluated through its own override.
        """
        from ..measures.base import FlexibilityMeasure

        return type(measure).set_value is not FlexibilityMeasure.set_value

    @staticmethod
    def _overrides_supports(measure: "FlexibilityMeasure") -> bool:
        """Whether a measure subclass replaced the default ``supports``.

        The default derives applicability from the measure's characteristics
        and sign class, which a vectorizing backend may evaluate from packed
        masks; an overridden ``supports`` (also a public extension point)
        must be consulted per offer instead.
        """
        from ..measures.base import FlexibilityMeasure

        return type(measure).supports is not FlexibilityMeasure.supports

    def measure_support(
        self, measure: "FlexibilityMeasure", flex_offers: Sequence["FlexOffer"]
    ) -> list[bool]:
        """Per-offer :meth:`FlexibilityMeasure.supports` verdicts, in order.

        The bulk form of the applicability check ``evaluate_population``
        performs; exposed on the contract so composing backends (sharding)
        can merge per-shard verdicts without re-deriving the semantics.

        Deliberately *eager* — every offer is consulted, unlike the lazily
        short-circuiting ``all()`` a scalar loop would run — because the
        vectorized implementations evaluate whole masks at once.  The one
        observable consequence: a custom ``supports`` override that
        *raises* on a later offer surfaces its exception even when an
        earlier offer already returned ``False``.
        """
        return [measure.supports(flex_offer) for flex_offer in flex_offers]

    @abc.abstractmethod
    def evaluate_population(
        self,
        measures: Sequence["FlexibilityMeasure"],
        flex_offers: Sequence["FlexOffer"],
        skip_unsupported: bool = True,
    ) -> tuple[dict[str, float], list[str]]:
        """``({measure_key: set_value}, [skipped keys])`` for a population.

        A measure is skipped when it does not support every offer in the
        population and ``skip_unsupported`` is true — the exact semantics of
        :func:`repro.measures.setwise.evaluate_set`, which delegates here.
        """

    @abc.abstractmethod
    def per_offer_values(
        self,
        measures: Sequence["FlexibilityMeasure"],
        flex_offers: Sequence["FlexOffer"],
    ) -> list[dict[str, float]]:
        """For each offer, ``{measure_key: value}`` over the measures that
        support it — the bulk form of the streaming engine's arrival cache."""

    # ------------------------------------------------------------------ #
    # Windowed analytics
    # ------------------------------------------------------------------ #
    def measure_window(self, capacity: int):
        """One sliding measure window of ``capacity`` samples.

        The window *kernel* the streaming engine's
        :class:`~repro.stream.window.WindowTracker` builds its per-measure
        windows with.  The default is the scalar pure-Python
        :class:`~repro.stream.window.MeasureWindow`; array-capable backends
        override this with the NumPy ring-buffer
        :class:`~repro.stream.windowkernels.ArrayMeasureWindow`.  Both
        kernels are conformance-pinned to each other (exact floats on
        ``total``/``min``/``max``/``count``, 1e-9 on ``mean``/percentiles),
        so the hook changes cost, never statistics.
        """
        from ..stream.window import MeasureWindow

        return MeasureWindow(capacity)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def aggregate_columns(
        self, members: Sequence["FlexOffer"]
    ) -> tuple[int, list[int], list[tuple[int, int]]]:
        """Start-aligned column sums over the members' effective bounds.

        Returns ``(anchor, member_offsets, [(amin, amax) per column])`` where
        the anchor is the minimum earliest start and uncovered columns sum to
        ``(0, 0)`` — the inner loop of
        :func:`repro.aggregation.aggregate_start_aligned`.
        """

    # ------------------------------------------------------------------ #
    # Assignments
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def feasible_profiles(
        self, flex_offers: Sequence["FlexOffer"], target: str
    ) -> list[tuple[int, ...]]:
        """Greedy minimal-total (``"min"``) or maximal-total (``"max"``)
        profiles satisfying each offer's total constraints, in profile order
        — the bulk form of the extreme-assignment constructors."""

    @abc.abstractmethod
    def assignment_feasibility(
        self,
        flex_offers: Sequence["FlexOffer"],
        starts: Sequence[int],
        values: Sequence[Sequence[int]],
    ) -> list[bool]:
        """Whether each ``(start, values)`` pair is a valid Definition 2
        assignment of its flex-offer."""

    # ------------------------------------------------------------------ #
    # Scheduling objectives
    # ------------------------------------------------------------------ #
    def batch_objectives(
        self,
        schedules: Sequence[Sequence[tuple[int, Sequence[int]]]],
        reference=None,
        metric: str = "absolute",
    ) -> list[float]:
        """Imbalance objective of many schedules in one bulk call.

        Each schedule is a sequence of ``(start_time, values)`` assignment
        pairs; ``reference`` is the optional supply
        :class:`~repro.core.timeseries.TimeSeries` the schedules should
        track and ``metric`` is ``"absolute"`` (L1 imbalance energy) or
        ``"squared"`` (peak-penalising).  Per schedule the result equals
        ``ImbalanceObjective(metric, reference).of_schedule(...)`` exactly —
        including the float combination order — so schedulers can score a
        whole generation in one backend call without perturbing seeded
        search trajectories.  The default runs the scalar semantics
        (:meth:`TimeSeries.sum_of` per schedule plus a sequential fold);
        vectorizing backends override it.
        """
        from ..core.timeseries import TimeSeries

        if metric not in ("absolute", "squared"):
            raise ValueError(f"unknown imbalance metric {metric!r}")
        results: list[float] = []
        for schedule in schedules:
            load = TimeSeries.sum_of(
                [TimeSeries(start, tuple(values)) for start, values in schedule]
            )
            deviation = load if reference is None else load - reference
            if metric == "absolute":
                results.append(float(sum(abs(value) for value in deviation.values)))
            else:
                results.append(
                    float(sum(value * value for value in deviation.values))
                )
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


# ---------------------------------------------------------------------- #
# Registry and selection
# ---------------------------------------------------------------------- #
#: A backend selection: a registered name, or a (possibly unregistered)
#: backend instance — the session façade's privately configured backends.
BackendSpec = Union[str, ComputeBackend]

_REGISTRY: dict[str, ComputeBackend] = {}
_bootstrapped = False
#: Reentrant: numpy-backend registration happens *inside* the guarded
#: section, and its module-level code may itself resolve backends.
_bootstrap_lock = threading.RLock()
_active: ContextVar[Optional[BackendSpec]] = ContextVar(
    "repro_backend", default=None
)


def register_backend(backend: ComputeBackend, overwrite: bool = False) -> ComputeBackend:
    """Register a backend instance under its ``name``.

    Registering a *different class* under an existing name raises unless
    ``overwrite`` is set, so a typo cannot silently shadow the reference
    implementation; re-registering the same class replaces the stored
    instance (the bundled backends are stateless, making that idempotent).
    """
    if not isinstance(backend, ComputeBackend):
        raise BackendError(f"{backend!r} is not a ComputeBackend instance")
    if not backend.name:
        raise BackendError(f"backend {type(backend).__name__} must define a name")
    if backend.name in _REGISTRY and not overwrite:
        existing = _REGISTRY[backend.name]
        if type(existing) is not type(backend):
            raise BackendError(
                f"backend name {backend.name!r} already registered by "
                f"{type(existing).__name__}"
            )
    _REGISTRY[backend.name] = backend
    return backend


def _ensure_registered() -> None:
    """Import the bundled backends once, registering what the host supports.

    Guarded by an explicit flag, not by registry emptiness: the reference
    backend registers as a side effect of ``import repro.backend``, which
    must not stop the lazily imported NumPy backend from ever loading.
    """
    global _bootstrapped
    if _bootstrapped:
        return
    # Double-checked: without the lock, a second thread arriving while the
    # first is still inside the (slow) NumPy import would see a registry
    # with no ``numpy`` entry and mis-resolve — the cluster worker serves
    # its first tasks on concurrent connection threads, which is exactly
    # that interleaving.
    with _bootstrap_lock:
        if _bootstrapped:
            return
        from . import reference  # noqa: F401  (registers on import)

        try:
            from . import numpy_backend  # noqa: F401  (registers when NumPy exists)
        except ImportError:  # pragma: no cover - exercised only without numpy
            pass
        # Registered last so its inner-backend default can see the NumPy
        # registration; depends only on the standard library itself.
        from . import sharded  # noqa: F401  (registers on import)
        _bootstrapped = True


def available_backends() -> tuple[str, ...]:
    """Names of every registered backend (``reference`` always included)."""
    _ensure_registered()
    return tuple(_REGISTRY)


def _resolve(selection: Optional[BackendSpec]) -> ComputeBackend:
    _ensure_registered()
    if selection is None:
        selection = _active.get()
    resolved = (
        selection
        if selection is not None
        else (os.environ.get(ENV_VAR) or "reference")
    )
    if isinstance(resolved, ComputeBackend):
        return resolved
    try:
        return _REGISTRY[resolved]
    except KeyError:
        raise BackendError(
            f"unknown compute backend {resolved!r}; available: "
            f"{sorted(_REGISTRY)} (is the backend's dependency installed?)"
        ) from None


def get_backend(selection: Optional[BackendSpec] = None) -> ComputeBackend:
    """The active compute backend.

    ``selection`` may be a registered name, an explicit
    :class:`ComputeBackend` instance (returned as-is — how the session
    façade and the sharded workers carry privately configured backends
    through the dispatch layer), or ``None`` for the context-resolved
    active backend.
    """
    return _resolve(selection)


@contextmanager
def use_backend(selection: BackendSpec):
    """Context manager activating a backend for the dynamic extent.

    ``selection`` is a registered backend name or an explicit
    :class:`ComputeBackend` instance.  Nested uses stack; the previous
    selection is restored on exit.  The activation is context-local
    (:mod:`contextvars`): pool worker threads never observe it.  Yields
    the activated backend instance::

        with use_backend("numpy") as backend:
            report = evaluate_set(population)   # vectorized
    """
    backend = _resolve(selection)
    token = _active.set(
        backend if isinstance(selection, ComputeBackend) else backend.name
    )
    try:
        yield backend
    finally:
        _active.reset(token)
