"""Pluggable compute backends for bulk flex-offer operations.

The paper's measures, aggregates and assignment computations are all
per-slice arithmetic over ``[amin, amax]`` ranges — exactly the shape NumPy
vectorizes.  This package provides

* a small dispatch API — :func:`get_backend`, :func:`use_backend`, the
  ``REPRO_BACKEND`` environment variable —
  behind which bulk callers (``evaluate_set``, ``aggregate_start_aligned``,
  the batch assignment helpers, the streaming engine's bulk ingestion)
  select an implementation;
* the always-available ``reference`` backend (the original per-object
  Python code, which defines the semantics);
* the ``numpy`` backend, registered only when NumPy is importable, which
  packs populations into :class:`ProfileMatrix` arrays and evaluates
  measures through their ``batch_values`` hooks;
* the ``sharded`` backend, which partitions a population into shards and
  fans the bulk operations across a thread/process pool, running each shard
  on the best inner backend and merging exactly;
* a fingerprint-keyed :class:`MatrixCache` (:data:`matrix_cache`) so
  repeated bulk calls on a stable population skip the packing pass.

Backends are observationally equivalent by contract; the differential
conformance suite (``tests/backend/``) pins the NumPy backend to the
reference implementation on every registered measure, aggregation and
assignment operation.
"""

from __future__ import annotations

import importlib.util

from .cache import MatrixCache, cached_matrix, matrix_cache
from .dispatch import (
    ENV_VAR,
    ComputeBackend,
    available_backends,
    get_backend,
    register_backend,
    use_backend,
)
from .reference import ReferenceBackend
from .sharded import ShardedBackend

#: Whether the ``numpy`` backend can register.  Detected without importing
#: NumPy — a plain ``import repro`` must not pay NumPy's import cost; the
#: heavy import happens lazily, on the first bulk operation or on the first
#: access to :class:`ProfileMatrix` / :class:`NumpyBackend` below.
NUMPY_AVAILABLE = importlib.util.find_spec("numpy") is not None

#: Lazily resolved exports (PEP 562), available only with NumPy installed.
_LAZY_EXPORTS = {"ProfileMatrix": "matrix", "NumpyBackend": "numpy_backend"}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        if not NUMPY_AVAILABLE:  # pragma: no cover - only without numpy
            raise ImportError(
                f"repro.backend.{name} requires NumPy, which is not "
                "installed; the 'reference' backend works without it"
            )
        import importlib

        module = importlib.import_module(f".{_LAZY_EXPORTS[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value  # cache: subsequent accesses skip this hook
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ENV_VAR",
    "NUMPY_AVAILABLE",
    "ComputeBackend",
    "MatrixCache",
    "ReferenceBackend",
    "ShardedBackend",
    "NumpyBackend",
    "ProfileMatrix",
    "available_backends",
    "cached_matrix",
    "get_backend",
    "matrix_cache",
    "register_backend",
    "use_backend",
]
