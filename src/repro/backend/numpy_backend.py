"""The vectorized NumPy compute backend.

Packs the population into a :class:`~repro.backend.matrix.ProfileMatrix`
once per bulk call — through the fingerprint-keyed
:data:`~repro.backend.cache.matrix_cache`, so repeated bulk calls on a
stable population reuse the packed arrays instead of re-packing — and
evaluates measures through their
:meth:`~repro.measures.base.FlexibilityMeasure.batch_values` hooks — each
registered measure vectorizes its own arithmetic over the packed arrays,
and measures that never opted in transparently fall back to the scalar
``value`` loop through the hook's default implementation.

Exactness contract (pinned by ``tests/backend/test_conformance.py``):

* integer-valued paths (time, energy, product, assignments, absolute area,
  aggregation columns, feasible profiles, feasibility checks) match the
  reference backend **exactly**;
* float paths (norms, relative area) perform the final floating-point
  operations on Python floats in the same order as the scalar code, so they
  agree to the last bit on every input the conformance suite generates and
  to 1e-9 by contract;
* inputs the packed ``int64`` representation cannot hold (the scalar model
  allows arbitrary Python integers) fall back to the reference backend
  instead of overflowing silently.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, ClassVar, Union

import numpy as np

from ..core.flexoffer import FlexOffer
from .cache import cached_matrix
from .dispatch import ComputeBackend, register_backend
from .matrix import DENSE_CELL_LIMIT, VALUE_LIMIT, ProfileMatrix
from .reference import ReferenceBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..measures.base import FlexibilityMeasure

__all__ = ["NumpyBackend"]

#: Shared scalar fallback for inputs the packed representation cannot hold.
_FALLBACK = ReferenceBackend()


def _as_matrix(
    flex_offers: Union[Sequence[FlexOffer], ProfileMatrix], cache=None
) -> ProfileMatrix:
    """The packed matrix of a population-or-handle argument.

    Every bulk operation accepts either a raw offer sequence or an
    already-packed :class:`ProfileMatrix` (the ``prepare()`` / sharded
    slice handles); this is the single place that coercion lives.
    ``cache`` selects the memoisation store (``None`` → the process-wide
    :data:`~repro.backend.cache.matrix_cache`).  Propagates the packer's
    ``OverflowError`` so each call site keeps its own reference-backend
    fallback.
    """
    if isinstance(flex_offers, ProfileMatrix):
        return flex_offers
    return cached_matrix(flex_offers, cache)


def _support_mask(measure: "FlexibilityMeasure", matrix: ProfileMatrix) -> np.ndarray:
    """Per-offer :meth:`FlexibilityMeasure.supports` over a population.

    The default ``supports`` derives from the measure's characteristics and
    the offers' sign classes, which the packed masks evaluate without
    touching Python objects; a measure that *overrides* ``supports`` (a
    public extension point) is consulted per offer so both backends see the
    same applicability.
    """
    if ComputeBackend._overrides_supports(measure):
        return np.array(
            [measure.supports(flex_offer) for flex_offer in matrix.offers],
            dtype=bool,
        )
    characteristics = measure.characteristics
    return np.where(
        matrix.is_mixed,
        characteristics.captures_mixed,
        np.where(
            matrix.is_production,
            characteristics.captures_negative,
            characteristics.captures_positive,
        ),
    )


class NumpyBackend(ComputeBackend):
    """Bulk operations over packed ``(amin, amax)`` arrays.

    Parameters
    ----------
    cache:
        The :class:`~repro.backend.cache.MatrixCache` memoising packed
        matrices for this instance; ``None`` (the registered default
        instance) shares the process-wide
        :data:`~repro.backend.cache.matrix_cache`.  The service layer
        constructs one backend per session with the session's own cache,
        so two sessions' retention budgets never compete.
    """

    name: ClassVar[str] = "numpy"

    def __init__(self, cache=None) -> None:
        self._cache = cache

    def _matrix(
        self, flex_offers: Union[Sequence[FlexOffer], ProfileMatrix]
    ) -> ProfileMatrix:
        """This instance's cache-routed :func:`_as_matrix`."""
        return _as_matrix(flex_offers, self._cache)

    # ------------------------------------------------------------------ #
    # Measures
    # ------------------------------------------------------------------ #
    def measure_values(
        self,
        measure: "FlexibilityMeasure",
        flex_offers: Union[Sequence[FlexOffer], ProfileMatrix],
    ) -> list[float]:
        try:
            matrix = self._matrix(flex_offers)
        except OverflowError:
            return _FALLBACK.measure_values(measure, flex_offers)
        return measure.batch_values(matrix)

    def prepare(
        self, flex_offers: Union[Sequence[FlexOffer], ProfileMatrix]
    ) -> Union[Sequence[FlexOffer], ProfileMatrix]:
        """Pack once, reuse across calls; unpackable populations pass through
        (each bulk call then re-attempts and takes its reference fallback)."""
        if isinstance(flex_offers, ProfileMatrix):
            return flex_offers
        try:
            return cached_matrix(flex_offers, self._cache)
        except OverflowError:
            return flex_offers

    def measure_support(
        self,
        measure: "FlexibilityMeasure",
        flex_offers: Union[Sequence[FlexOffer], ProfileMatrix],
    ) -> list[bool]:
        try:
            matrix = self._matrix(flex_offers)
        except OverflowError:
            return _FALLBACK.measure_support(measure, flex_offers)
        return [bool(flag) for flag in _support_mask(measure, matrix)]

    def evaluate_population(
        self,
        measures: Sequence["FlexibilityMeasure"],
        flex_offers: Union[Sequence[FlexOffer], ProfileMatrix],
        skip_unsupported: bool = True,
    ) -> tuple[dict[str, float], list[str]]:
        try:
            matrix = self._matrix(flex_offers)
        except OverflowError:
            return _FALLBACK.evaluate_population(measures, flex_offers, skip_unsupported)
        values: dict[str, float] = {}
        skipped: list[str] = []
        for measure in measures:
            if skip_unsupported and not bool(
                np.all(_support_mask(measure, matrix))
            ):
                skipped.append(measure.key)
                continue
            if self._overrides_set_value(measure):
                values[measure.key] = measure.set_value(matrix.offers)
            else:
                values[measure.key] = measure.combine_values(
                    measure.batch_values(matrix)
                )
        return values, skipped

    def per_offer_values(
        self,
        measures: Sequence["FlexibilityMeasure"],
        flex_offers: Union[Sequence[FlexOffer], ProfileMatrix],
    ) -> list[dict[str, float]]:
        try:
            matrix = self._matrix(flex_offers)
        except OverflowError:
            return _FALLBACK.per_offer_values(measures, flex_offers)
        results: list[dict[str, float]] = [{} for _ in range(matrix.size)]
        for measure in measures:
            mask = _support_mask(measure, matrix)
            if bool(np.all(mask)):
                indices: Sequence[int] = range(matrix.size)
                batch = measure.batch_values(matrix)
            else:
                indices = np.nonzero(mask)[0].tolist()
                batch = (
                    measure.batch_values(matrix.take(indices)) if indices else []
                )
            for index, value in zip(indices, batch):
                results[index][measure.key] = value
        return results

    # ------------------------------------------------------------------ #
    # Windowed analytics
    # ------------------------------------------------------------------ #
    def measure_window(self, capacity: int):
        """The array-backed window kernel (NumPy is known to be present)."""
        from ..stream.windowkernels import ArrayMeasureWindow

        return ArrayMeasureWindow(capacity)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate_columns(
        self, members: Union[Sequence[FlexOffer], ProfileMatrix]
    ) -> tuple[int, list[int], list[tuple[int, int]]]:
        try:
            matrix = self._matrix(members)
        except OverflowError:
            return _FALLBACK.aggregate_columns(members)
        if matrix.size > (1 << 22):
            # Column sums accumulate across members; beyond ~4M members the
            # per-column total could leave the exactly-representable range.
            return _FALLBACK.aggregate_columns(members)
        anchor = int(matrix.tes.min())
        member_offsets = matrix.tes - anchor
        horizon = int((member_offsets + matrix.durations).max())
        column = member_offsets[matrix.owner] + matrix.within
        low = np.zeros(horizon, dtype=np.int64)
        high = np.zeros(horizon, dtype=np.int64)
        np.add.at(low, column, matrix.effective_amin)
        np.add.at(high, column, matrix.effective_amax)
        return (
            anchor,
            member_offsets.tolist(),
            list(zip(low.tolist(), high.tolist())),
        )

    # ------------------------------------------------------------------ #
    # Assignments
    # ------------------------------------------------------------------ #
    def feasible_profiles(
        self, flex_offers: Sequence[FlexOffer], target: str
    ) -> list[tuple[int, ...]]:
        if target not in ("min", "max"):
            raise ValueError(f"unknown target {target!r}")
        try:
            # Packed directly, not through the cache: the bulk schedulers
            # feed this with one-shot candidate populations (a fresh list
            # per offer / per generation), which would churn the shared LRU
            # out of its genuinely reusable whole-population entries.
            matrix = ProfileMatrix(flex_offers)
        except OverflowError:
            return _FALLBACK.feasible_profiles(flex_offers, target)
        if matrix.size == 0:
            return []
        room = matrix.amax - matrix.amin  # headroom == slack per slice
        # Room already consumed by earlier slices of the same offer (the
        # greedy scalar loop consumes capacity strictly in profile order).
        # The global cumsum may wrap on huge populations, but the *within-
        # segment* difference taken next is exact modulo 2^64 and its true
        # value fits int64 (ProfileMatrix bounds per-offer sums), so the
        # wrap cancels.
        cumulative = np.cumsum(room) - room
        consumed = cumulative - cumulative[matrix.starts][matrix.owner]
        if target == "min":
            need = matrix.cmin - matrix.profile_min  # deficit per offer
            bump = np.clip(need[matrix.owner] - consumed, 0, room)
            return matrix.profiles(matrix.amin + bump)
        surplus = matrix.profile_max - matrix.cmax
        drop = np.clip(surplus[matrix.owner] - consumed, 0, room)
        return matrix.profiles(matrix.amax - drop)

    def assignment_feasibility(
        self,
        flex_offers: Sequence[FlexOffer],
        starts: Sequence[int],
        values: Sequence[Sequence[int]],
    ) -> list[bool]:
        flex_offers = list(flex_offers)
        profiles = [tuple(profile) for profile in values]
        flat = [value for profile in profiles for value in profile]
        # The scalar checker rejects non-int (and bool) entries; the packed
        # arrays would silently coerce them, so route those to the loop.
        if not all(type(value) is int for value in flat) or not all(
            type(start) is int for start in starts
        ):
            return _FALLBACK.assignment_feasibility(flex_offers, starts, profiles)
        if any(
            len(profile) != flex_offer.duration
            for profile, flex_offer in zip(profiles, flex_offers)
        ):
            return _FALLBACK.assignment_feasibility(flex_offers, starts, profiles)
        try:
            # Direct packing for the same reason as feasible_profiles: the
            # screening populations are one-shot, so caching them only
            # evicts reusable entries.
            matrix = ProfileMatrix(flex_offers)
            packed = np.fromiter(flat, dtype=np.int64, count=len(flat))
            start_times = np.fromiter(
                starts, dtype=np.int64, count=len(flex_offers)
            )
        except OverflowError:
            return _FALLBACK.assignment_feasibility(flex_offers, starts, profiles)
        if packed.size and int(np.abs(packed).max()) > VALUE_LIMIT:
            # Candidate values are caller-supplied: keep their running totals
            # inside the exactly-representable range too.
            return _FALLBACK.assignment_feasibility(flex_offers, starts, profiles)
        start_ok = (matrix.tes <= start_times) & (start_times <= matrix.tls)
        in_range = (matrix.amin <= packed) & (packed <= matrix.amax)
        slices_ok = matrix._reduce(np.logical_and, in_range)
        totals = matrix._reduce(np.add, packed)
        total_ok = (matrix.cmin <= totals) & (totals <= matrix.cmax)
        return (start_ok & slices_ok & total_ok).tolist()

    # ------------------------------------------------------------------ #
    # Scheduling objectives
    # ------------------------------------------------------------------ #
    def batch_objectives(
        self,
        schedules: Sequence[Sequence[tuple[int, Sequence[int]]]],
        reference=None,
        metric: str = "absolute",
    ) -> list[float]:
        """Whole-generation imbalance objectives over one dense load grid.

        The expensive part of the scalar path — building one
        ``TimeSeries`` per assignment and summing them per schedule — is
        replaced by a single ``np.add.at`` scatter of every assignment's
        values into a ``(schedules × horizon)`` int64 grid.  The final
        per-schedule fold stays a sequential Python reduction over the
        (small) deviation row, in time order, so the float results match
        the scalar objective bit-for-bit; columns outside a schedule's own
        span are exact zeros and leave the fold unchanged.  Inputs the
        packed representation cannot evaluate exactly (non-int or oversized
        values, negative starts the scalar ``TimeSeries`` would reject,
        schedules so large their column sums could leave int64) take the
        scalar fallback.
        """
        if metric not in ("absolute", "squared"):
            raise ValueError(f"unknown imbalance metric {metric!r}")
        schedules = [list(schedule) for schedule in schedules]
        if not schedules:
            return []
        starts = [start for schedule in schedules for start, _ in schedule]
        durations = [
            len(values) for schedule in schedules for _, values in schedule
        ]
        flat: list[int] = []
        for schedule in schedules:
            for _, values in schedule:
                flat.extend(values)
        any_empty = any(not schedule for schedule in schedules)
        scalar = super().batch_objectives
        # Validation mirrors the scalar TimeSeries path exactly — non-int
        # (and bool) entries and negative starts are rejected, magnitudes
        # must stay in the exact-sum range — but runs at C speed: a
        # ``set(map(type, ...))`` sweep distinguishes bool from int (they
        # are distinct types), the int64 conversion raises ``OverflowError``
        # on unbounded Python ints, and the bound checks are vectorized.
        try:
            if starts and set(map(type, starts)) != {int}:
                return scalar(schedules, reference, metric)
            start_array = np.asarray(starts, dtype=np.int64)
            if flat and set(map(type, flat)) != {int}:
                return scalar(schedules, reference, metric)
            flat_array = np.asarray(flat, dtype=np.int64)
        except OverflowError:
            return scalar(schedules, reference, metric)
        if starts and int(start_array.min()) < 0:
            return scalar(schedules, reference, metric)
        if flat and int(np.abs(flat_array).max()) > VALUE_LIMIT:
            return scalar(schedules, reference, metric)
        if max((len(schedule) for schedule in schedules), default=0) > (1 << 21):
            # Column sums accumulate per schedule; beyond ~2M assignments a
            # single column could leave the exactly-representable range.
            return scalar(schedules, reference, metric)
        reference_values = tuple(reference.values) if reference is not None else ()
        reference_ints = all(type(value) is int for value in reference_values)
        if reference_ints and reference_values and (
            max(map(abs, reference_values)) > VALUE_LIMIT
        ):
            return scalar(schedules, reference, metric)
        duration_array = np.asarray(durations, dtype=np.int64)
        # The global grid covers every schedule's load span (and 0 for the
        # empty-schedule anchor) plus the reference span — a superset of
        # each schedule's own union span, with the extra columns exactly 0.
        low = int(start_array.min()) if starts else 0
        if any_empty or not starts:
            low = min(low, 0)
        high = (
            int((start_array + duration_array).max()) - 1 if starts else low - 1
        )
        if reference is not None:
            low = min(low, reference.start)
            high = max(high, reference.end)
        horizon = high - low + 1
        count = len(schedules)
        if horizon <= 0:
            return [0.0] * count
        if count * horizon > DENSE_CELL_LIMIT:
            return scalar(schedules, reference, metric)
        dense = np.zeros((count, horizon), dtype=np.int64)
        if flat:
            segment = np.zeros(len(durations), dtype=np.int64)
            np.cumsum(duration_array[:-1], out=segment[1:])
            within = np.arange(len(flat), dtype=np.int64) - np.repeat(
                segment, duration_array
            )
            columns = np.repeat(start_array - low, duration_array) + within
            assignment_rows = np.repeat(
                np.arange(count, dtype=np.int64),
                [len(schedule) for schedule in schedules],
            )
            np.add.at(
                dense,
                (np.repeat(assignment_rows, duration_array), columns),
                flat_array,
            )
        if reference is not None and reference_values:
            reference_row = np.zeros(
                horizon, dtype=np.int64 if reference_ints else np.float64
            )
            offset = reference.start - low
            reference_row[offset : offset + len(reference_values)] = reference_values
            deviation = dense - reference_row
        else:
            deviation = dense
        results: list[float] = []
        for index in range(count):
            row = deviation[index].tolist()
            if metric == "absolute":
                results.append(float(sum(abs(value) for value in row)))
            else:
                results.append(float(sum(value * value for value in row)))
        return results


register_backend(NumpyBackend())
