"""The vectorized NumPy compute backend.

Packs the population into a :class:`~repro.backend.matrix.ProfileMatrix`
once per bulk call — through the fingerprint-keyed
:data:`~repro.backend.cache.matrix_cache`, so repeated bulk calls on a
stable population reuse the packed arrays instead of re-packing — and
evaluates measures through their
:meth:`~repro.measures.base.FlexibilityMeasure.batch_values` hooks — each
registered measure vectorizes its own arithmetic over the packed arrays,
and measures that never opted in transparently fall back to the scalar
``value`` loop through the hook's default implementation.

Exactness contract (pinned by ``tests/backend/test_conformance.py``):

* integer-valued paths (time, energy, product, assignments, absolute area,
  aggregation columns, feasible profiles, feasibility checks) match the
  reference backend **exactly**;
* float paths (norms, relative area) perform the final floating-point
  operations on Python floats in the same order as the scalar code, so they
  agree to the last bit on every input the conformance suite generates and
  to 1e-9 by contract;
* inputs the packed ``int64`` representation cannot hold (the scalar model
  allows arbitrary Python integers) fall back to the reference backend
  instead of overflowing silently.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, ClassVar, Union

import numpy as np

from ..core.flexoffer import FlexOffer
from .cache import cached_matrix
from .dispatch import ComputeBackend, register_backend
from .matrix import VALUE_LIMIT, ProfileMatrix
from .reference import ReferenceBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..measures.base import FlexibilityMeasure

__all__ = ["NumpyBackend"]

#: Shared scalar fallback for inputs the packed representation cannot hold.
_FALLBACK = ReferenceBackend()


def _support_mask(measure: "FlexibilityMeasure", matrix: ProfileMatrix) -> np.ndarray:
    """Per-offer :meth:`FlexibilityMeasure.supports` over a population.

    The default ``supports`` derives from the measure's characteristics and
    the offers' sign classes, which the packed masks evaluate without
    touching Python objects; a measure that *overrides* ``supports`` (a
    public extension point) is consulted per offer so both backends see the
    same applicability.
    """
    if ComputeBackend._overrides_supports(measure):
        return np.array(
            [measure.supports(flex_offer) for flex_offer in matrix.offers],
            dtype=bool,
        )
    characteristics = measure.characteristics
    return np.where(
        matrix.is_mixed,
        characteristics.captures_mixed,
        np.where(
            matrix.is_production,
            characteristics.captures_negative,
            characteristics.captures_positive,
        ),
    )


class NumpyBackend(ComputeBackend):
    """Bulk operations over packed ``(amin, amax)`` arrays."""

    name: ClassVar[str] = "numpy"

    # ------------------------------------------------------------------ #
    # Measures
    # ------------------------------------------------------------------ #
    def measure_values(
        self,
        measure: "FlexibilityMeasure",
        flex_offers: Union[Sequence[FlexOffer], ProfileMatrix],
    ) -> list[float]:
        try:
            matrix = (
                flex_offers
                if isinstance(flex_offers, ProfileMatrix)
                else cached_matrix(flex_offers)
            )
        except OverflowError:
            return _FALLBACK.measure_values(measure, flex_offers)
        return measure.batch_values(matrix)

    def prepare(
        self, flex_offers: Union[Sequence[FlexOffer], ProfileMatrix]
    ) -> Union[Sequence[FlexOffer], ProfileMatrix]:
        """Pack once, reuse across calls; unpackable populations pass through
        (each bulk call then re-attempts and takes its reference fallback)."""
        if isinstance(flex_offers, ProfileMatrix):
            return flex_offers
        try:
            return cached_matrix(flex_offers)
        except OverflowError:
            return flex_offers

    def measure_support(
        self,
        measure: "FlexibilityMeasure",
        flex_offers: Union[Sequence[FlexOffer], ProfileMatrix],
    ) -> list[bool]:
        try:
            matrix = (
                flex_offers
                if isinstance(flex_offers, ProfileMatrix)
                else cached_matrix(flex_offers)
            )
        except OverflowError:
            return _FALLBACK.measure_support(measure, flex_offers)
        return [bool(flag) for flag in _support_mask(measure, matrix)]

    def evaluate_population(
        self,
        measures: Sequence["FlexibilityMeasure"],
        flex_offers: Sequence[FlexOffer],
        skip_unsupported: bool = True,
    ) -> tuple[dict[str, float], list[str]]:
        try:
            matrix = cached_matrix(flex_offers)
        except OverflowError:
            return _FALLBACK.evaluate_population(measures, flex_offers, skip_unsupported)
        values: dict[str, float] = {}
        skipped: list[str] = []
        for measure in measures:
            if skip_unsupported and not bool(
                np.all(_support_mask(measure, matrix))
            ):
                skipped.append(measure.key)
                continue
            if self._overrides_set_value(measure):
                values[measure.key] = measure.set_value(matrix.offers)
            else:
                values[measure.key] = measure.combine_values(
                    measure.batch_values(matrix)
                )
        return values, skipped

    def per_offer_values(
        self,
        measures: Sequence["FlexibilityMeasure"],
        flex_offers: Sequence[FlexOffer],
    ) -> list[dict[str, float]]:
        try:
            matrix = cached_matrix(flex_offers)
        except OverflowError:
            return _FALLBACK.per_offer_values(measures, flex_offers)
        results: list[dict[str, float]] = [{} for _ in range(matrix.size)]
        for measure in measures:
            mask = _support_mask(measure, matrix)
            if bool(np.all(mask)):
                indices: Sequence[int] = range(matrix.size)
                batch = measure.batch_values(matrix)
            else:
                indices = np.nonzero(mask)[0].tolist()
                batch = (
                    measure.batch_values(matrix.take(indices)) if indices else []
                )
            for index, value in zip(indices, batch):
                results[index][measure.key] = value
        return results

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate_columns(
        self, members: Sequence[FlexOffer]
    ) -> tuple[int, list[int], list[tuple[int, int]]]:
        try:
            matrix = cached_matrix(members)
        except OverflowError:
            return _FALLBACK.aggregate_columns(members)
        if matrix.size > (1 << 22):
            # Column sums accumulate across members; beyond ~4M members the
            # per-column total could leave the exactly-representable range.
            return _FALLBACK.aggregate_columns(members)
        anchor = int(matrix.tes.min())
        member_offsets = matrix.tes - anchor
        horizon = int((member_offsets + matrix.durations).max())
        column = member_offsets[matrix.owner] + matrix.within
        low = np.zeros(horizon, dtype=np.int64)
        high = np.zeros(horizon, dtype=np.int64)
        np.add.at(low, column, matrix.effective_amin)
        np.add.at(high, column, matrix.effective_amax)
        return (
            anchor,
            member_offsets.tolist(),
            list(zip(low.tolist(), high.tolist())),
        )

    # ------------------------------------------------------------------ #
    # Assignments
    # ------------------------------------------------------------------ #
    def feasible_profiles(
        self, flex_offers: Sequence[FlexOffer], target: str
    ) -> list[tuple[int, ...]]:
        if target not in ("min", "max"):
            raise ValueError(f"unknown target {target!r}")
        try:
            # Packed directly, not through the cache: the bulk schedulers
            # feed this with one-shot candidate populations (a fresh list
            # per offer / per generation), which would churn the shared LRU
            # out of its genuinely reusable whole-population entries.
            matrix = ProfileMatrix(flex_offers)
        except OverflowError:
            return _FALLBACK.feasible_profiles(flex_offers, target)
        if matrix.size == 0:
            return []
        room = matrix.amax - matrix.amin  # headroom == slack per slice
        # Room already consumed by earlier slices of the same offer (the
        # greedy scalar loop consumes capacity strictly in profile order).
        # The global cumsum may wrap on huge populations, but the *within-
        # segment* difference taken next is exact modulo 2^64 and its true
        # value fits int64 (ProfileMatrix bounds per-offer sums), so the
        # wrap cancels.
        cumulative = np.cumsum(room) - room
        consumed = cumulative - cumulative[matrix.starts][matrix.owner]
        if target == "min":
            need = matrix.cmin - matrix.profile_min  # deficit per offer
            bump = np.clip(need[matrix.owner] - consumed, 0, room)
            return matrix.profiles(matrix.amin + bump)
        surplus = matrix.profile_max - matrix.cmax
        drop = np.clip(surplus[matrix.owner] - consumed, 0, room)
        return matrix.profiles(matrix.amax - drop)

    def assignment_feasibility(
        self,
        flex_offers: Sequence[FlexOffer],
        starts: Sequence[int],
        values: Sequence[Sequence[int]],
    ) -> list[bool]:
        flex_offers = list(flex_offers)
        profiles = [tuple(profile) for profile in values]
        flat = [value for profile in profiles for value in profile]
        # The scalar checker rejects non-int (and bool) entries; the packed
        # arrays would silently coerce them, so route those to the loop.
        if not all(type(value) is int for value in flat) or not all(
            type(start) is int for start in starts
        ):
            return _FALLBACK.assignment_feasibility(flex_offers, starts, profiles)
        if any(
            len(profile) != flex_offer.duration
            for profile, flex_offer in zip(profiles, flex_offers)
        ):
            return _FALLBACK.assignment_feasibility(flex_offers, starts, profiles)
        try:
            # Direct packing for the same reason as feasible_profiles: the
            # screening populations are one-shot, so caching them only
            # evicts reusable entries.
            matrix = ProfileMatrix(flex_offers)
            packed = np.fromiter(flat, dtype=np.int64, count=len(flat))
            start_times = np.fromiter(
                starts, dtype=np.int64, count=len(flex_offers)
            )
        except OverflowError:
            return _FALLBACK.assignment_feasibility(flex_offers, starts, profiles)
        if packed.size and int(np.abs(packed).max()) > VALUE_LIMIT:
            # Candidate values are caller-supplied: keep their running totals
            # inside the exactly-representable range too.
            return _FALLBACK.assignment_feasibility(flex_offers, starts, profiles)
        start_ok = (matrix.tes <= start_times) & (start_times <= matrix.tls)
        in_range = (matrix.amin <= packed) & (packed <= matrix.amax)
        slices_ok = matrix._reduce(np.logical_and, in_range)
        totals = matrix._reduce(np.add, packed)
        total_ok = (matrix.cmin <= totals) & (totals <= matrix.cmax)
        return (start_ok & slices_ok & total_ok).tolist()


register_backend(NumpyBackend())
