"""The sharded compute backend: shard-parallel fan-out of the bulk operations.

A :class:`ShardedBackend` partitions a population into ``K`` contiguous
shards, runs every bulk operation of the backend contract shard-by-shard on
an *inner* backend (the NumPy backend when available, the reference backend
otherwise) through a ``concurrent.futures`` pool, and merges the shard
results exactly:

* per-offer results (``measure_values``, ``per_offer_values``,
  ``feasible_profiles``, ``assignment_feasibility``, ``measure_support``)
  concatenate in shard order — bit-identical to the single-process result
  because shards preserve population order;
* set values combine the *concatenated* per-offer value lists through the
  measure's :meth:`~repro.measures.base.FlexibilityMeasure.combine_values`
  hook — the same list, in the same order, a single-process backend would
  combine, so even float paths agree to the last bit;
* start-aligned aggregation re-anchors each shard's column sums at the
  global earliest start and adds them — exact integer arithmetic;
* measures that override ``set_value`` (a non-decomposable set semantics)
  fall back to their own override on the full population, exactly like the
  reference backend.

Error parity is positional: when an operation raises for some offer, the
exception surfaces from the lowest-indexed shard that failed — i.e. the
same first-offending-offer (and for ``evaluate_population`` the same
first-offending-*measure*) the reference backend's scalar loops would have
hit, with the same exception class.  One documented exception: support
checks are evaluated eagerly per shard (see
:meth:`~repro.backend.dispatch.ComputeBackend.measure_support`), so a
custom ``supports`` override that raises on a later offer of the *same
shard* as an earlier unsupported offer surfaces its exception where the
reference's lazily short-circuiting ``all()`` would have skipped the
measure; across shards the short-circuit is honoured.

Executors
---------
``thread`` (default)
    A shared :class:`~concurrent.futures.ThreadPoolExecutor`.  The NumPy
    kernels release the GIL, so shard evaluation overlaps on multicore
    hosts, and the fingerprint-keyed matrix cache keeps per-shard packed
    arrays warm across calls with zero copying.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` for pure-Python
    inner backends or GIL-bound measures.  Populations and measures must be
    picklable, and every call ships the shard's offers to the workers, so
    it only pays off for expensive per-offer work.
``remote``
    A :class:`~repro.cluster.RemoteShardExecutor` dispatching shards to
    :mod:`repro.cluster` worker processes over framed TCP — the multi-host
    tier.  Requires a cluster (the ``cluster`` argument or
    ``REPRO_CLUSTER``); shard chunks are interned per connection by
    fingerprint, so steady-state calls reference offers by key instead of
    re-shipping them.  A dead host is evicted and its shards redispatched
    to surviving hosts (a *partial* recovery — no pool rebuild) within the
    same retry budget below.

Knobs (read once, at construction)
----------------------------------
``REPRO_SHARDS``
    Shard count; defaults to ``os.cpu_count()``.
``REPRO_SHARD_EXECUTOR``
    ``thread``, ``process`` or ``remote``.
``REPRO_CLUSTER``
    Worker hosts for the remote executor (``host:port,host:port`` or a
    JSON :meth:`~repro.cluster.ClusterSpec.spec` document).
``REPRO_SHARD_MIN``
    Populations smaller than this are delegated whole to the inner backend
    (fan-out overhead would dominate); defaults to
    :data:`DEFAULT_MIN_POPULATION`.
``REPRO_SHARD_RETRIES``
    Per-shard retry budget for infrastructure failures (a broken worker
    pool, an injected :class:`~repro.faults.FaultInjected`); defaults to
    :data:`DEFAULT_RETRIES`.  Application errors — an offer a measure
    rejects — are never retried.
``REPRO_SHARD_HEDGE_MS``
    Straggler hedging: when a shard's result is this many milliseconds
    late, an identical duplicate is submitted to a spare pool slot and the
    first result wins (the primary wins ties).  ``0`` (the default)
    disables hedging.  Shard workers are pure functions of their inputs,
    so the duplicate's result is bit-identical and first-result-wins
    cannot change any merged output.

Self-healing
------------
``_map`` — the one fan-out/merge primitive every operation funnels
through — retries each shard independently on *infrastructure* errors
(bounded by the retry budget, with linear backoff), detects a broken
executor, rebuilds the pool once and re-dispatches only the shards whose
futures were lost (completed shards keep their results), and hedges
stragglers as described above.  Shard results are still consumed in
submission order, so the first-offending-offer error-parity contract
above survives every recovery path.

Like every backend, the sharded backend is pinned observationally
equivalent to the reference implementation by the differential conformance
suite (``tests/backend/test_conformance.py``) and the golden fixtures.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
    wait,
)
from typing import TYPE_CHECKING, ClassVar, Optional

from ..core.errors import BackendError
from ..core.flexoffer import FlexOffer
from ..faults.plan import SHARD_RESULT, SHARD_SUBMIT, FaultInjected, FaultPlan
from .cache import matrix_cache
from .dispatch import (
    ComputeBackend,
    _env_float,
    _env_int,
    _warn_ignored_env,
    get_backend,
    register_backend,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..measures.base import FlexibilityMeasure

__all__ = [
    "ShardedBackend",
    "ENV_SHARDS",
    "ENV_EXECUTOR",
    "ENV_MIN_POPULATION",
    "ENV_RETRIES",
    "ENV_HEDGE_MS",
    "DEFAULT_MIN_POPULATION",
    "DEFAULT_RETRIES",
]

#: Environment variable overriding the shard count.
ENV_SHARDS = "REPRO_SHARDS"
#: Environment variable selecting the executor kind (``thread``/``process``).
ENV_EXECUTOR = "REPRO_SHARD_EXECUTOR"
#: Environment variable overriding the delegation threshold.
ENV_MIN_POPULATION = "REPRO_SHARD_MIN"
#: Environment variable overriding the per-shard retry budget.
ENV_RETRIES = "REPRO_SHARD_RETRIES"
#: Environment variable enabling straggler hedging (milliseconds, 0 = off).
ENV_HEDGE_MS = "REPRO_SHARD_HEDGE_MS"

#: Below this population size the whole operation runs on the inner backend:
#: pool dispatch plus per-shard packing costs more than it saves.
DEFAULT_MIN_POPULATION = 4096

#: Default per-shard retry budget for infrastructure failures.
DEFAULT_RETRIES = 2

#: Exceptions the shard loop treats as infrastructure (retryable): a pool
#: whose workers died, or an injected fault standing in for one.
_RETRYABLE = (BrokenExecutor, FaultInjected)

#: Valid executor kinds (``remote`` dispatches to a repro.cluster pool).
_EXECUTOR_KINDS = ("thread", "process", "remote")


class _FailedSubmit:
    """A future-shaped sentinel for a submission that already failed.

    Submission errors (an injected ``shard.submit`` fault, a pool broken
    by an earlier shard) must not abort the whole fan-out — later shards
    still get submitted, and this shard's error is raised when *its* turn
    to be consumed comes, entering the same retry loop a failed
    ``result()`` would.
    """

    def __init__(self, error: BaseException) -> None:
        self._error = error

    def result(self, timeout: Optional[float] = None):
        raise self._error

    def cancel(self) -> bool:  # pragma: no cover - parity with Future
        return True


# --------------------------------------------------------------------- #
# Shard workers — module level so the process executor can pickle them.
# Each resolves the inner backend by name inside the worker, which also
# bootstraps the registry in freshly spawned interpreter children.
# --------------------------------------------------------------------- #
def _values_outcome(backend, measure, population):
    """``("ok", values)`` or ``("error", exc)`` of one shard's measure values."""
    try:
        return "ok", backend.measure_values(measure, population)
    except Exception as error:  # noqa: BLE001 - re-raised in shard order
        return "error", error


def _shard_values_outcome(inner: str, measure, flex_offers):
    """Value outcome of a single measure over one shard."""
    return _values_outcome(get_backend(inner), measure, flex_offers)


def _shard_evaluate(inner: str, measures, value_mask, flex_offers, skip_unsupported):
    """One shard's evaluation round: support outcomes plus value outcomes.

    Returns, per measure, ``(support_outcome, value_outcome_or_None)``,
    each outcome an ``("ok", payload)`` / ``("error", exc)`` pair — support
    checks are captured like value evaluations so a later measure's raising
    ``supports`` cannot preempt an earlier measure's error at assembly (the
    reference backend evaluates measure-major).  The population is packed
    once through :meth:`ComputeBackend.prepare` and the handle reused for
    every measure — the shard's dominant fixed cost.  Values are computed
    only when the mask allows (measures with an overridden ``set_value``
    are evaluated whole by the caller) and when the shard's own support
    verdict — or ``skip_unsupported=False`` — says the evaluation would
    also run under the reference backend's semantics.
    """
    backend = get_backend(inner)
    prepared = backend.prepare(flex_offers)
    rows = []
    for measure, wants_values in zip(measures, value_mask):
        try:
            support = ("ok", all(backend.measure_support(measure, prepared)))
        except Exception as error:  # noqa: BLE001 - re-raised at assembly
            support = ("error", error)
        outcome = None
        if wants_values and (
            not skip_unsupported or support == ("ok", True)
        ):
            # With skip_unsupported=False the assembly may consume values
            # even when this shard's support probe raised (another shard's
            # unsupported verdict short-circuits the probe error away), so
            # the outcome must exist unconditionally on that path.
            outcome = _values_outcome(backend, measure, prepared)
        rows.append((support, outcome))
    return rows


def _shard_support(inner: str, measure, flex_offers):
    """Per-offer support verdicts of one shard."""
    return get_backend(inner).measure_support(measure, flex_offers)


def _shard_per_offer(inner: str, measures, flex_offers):
    """Per-offer ``{measure_key: value}`` dicts of one shard."""
    return get_backend(inner).per_offer_values(measures, flex_offers)


def _shard_aggregate(inner: str, flex_offers):
    """One shard's start-aligned column sums (merged by the caller)."""
    return get_backend(inner).aggregate_columns(flex_offers)


def _shard_profiles(inner: str, flex_offers, target: str):
    """One shard's extreme feasible profiles."""
    return get_backend(inner).feasible_profiles(flex_offers, target)


def _shard_feasibility(inner: str, flex_offers, starts, values):
    """One shard's Definition 2 feasibility verdicts."""
    return get_backend(inner).assignment_feasibility(flex_offers, starts, values)


def _shard_objectives(inner: str, schedules, reference, metric):
    """One shard's (schedule-partitioned) imbalance objective values."""
    return get_backend(inner).batch_objectives(schedules, reference, metric)


class ShardedBackend(ComputeBackend):
    """Fan bulk operations across population shards on a worker pool.

    Parameters
    ----------
    shards:
        Number of shards (and pool workers).  ``None`` reads
        ``REPRO_SHARDS`` and falls back to ``os.cpu_count()``.
    executor:
        ``"thread"`` (default), ``"process"`` or ``"remote"`` (dispatch to
        a :mod:`repro.cluster` worker pool); ``None`` reads
        ``REPRO_SHARD_EXECUTOR``.
    min_population:
        Populations smaller than this run whole on the inner backend.
        ``None`` reads ``REPRO_SHARD_MIN``.
    inner:
        The inner backend: a registered name, or (thread executor only) an
        explicit :class:`ComputeBackend` instance — the service layer hands
        a session-scoped ``NumpyBackend`` here so shard workers hit the
        session's cache.  ``None`` picks ``numpy`` when registered, else
        ``reference``.
    cache:
        The :class:`~repro.backend.cache.MatrixCache` consulted when carving
        shard handles out of an already-cached whole-population matrix;
        ``None`` (the registered default instance) uses the process-wide
        :data:`~repro.backend.cache.matrix_cache`.
    retries:
        Per-shard retry budget for infrastructure failures.  ``None``
        reads ``REPRO_SHARD_RETRIES`` and falls back to
        :data:`DEFAULT_RETRIES`; ``0`` fails fast with a typed
        :class:`~repro.core.errors.BackendError`.
    retry_backoff_s:
        Base sleep before a retry (multiplied by the attempt number).
    hedge_ms:
        Straggler-hedging latency threshold in milliseconds.  ``None``
        reads ``REPRO_SHARD_HEDGE_MS``; ``0`` disables hedging.  When
        enabled the pool gets one spare slot for the duplicates.
    faults:
        Optional :class:`repro.faults.FaultPlan`; when set the fan-out
        fires the ``shard.submit`` / ``shard.result`` injection sites
        (a ``kill`` rule kills a live process-pool worker), and a remote
        executor additionally fires the wire-level ``cluster.connect`` /
        ``cluster.send`` / ``cluster.recv`` sites.
    cluster:
        Worker hosts for the ``"remote"`` executor — a
        :class:`~repro.cluster.ClusterSpec` (or anything its
        :meth:`~repro.cluster.ClusterSpec.from_spec` accepts).  ``None``
        reads ``REPRO_CLUSTER``; required (one way or the other) when
        ``executor="remote"`` and rejected for local executors.
    """

    name: ClassVar[str] = "sharded"

    def __init__(
        self,
        shards: Optional[int] = None,
        executor: Optional[str] = None,
        min_population: Optional[int] = None,
        inner: Optional[Union[str, ComputeBackend]] = None,
        cache=None,
        retries: Optional[int] = None,
        retry_backoff_s: float = 0.01,
        hedge_ms: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        cluster=None,
    ) -> None:
        # Explicit arguments fail fast; environment values degrade to the
        # documented defaults with a warning instead — the default instance
        # is constructed during registry bootstrap, and a typo in an unused
        # backend's knob must not break every get_backend() call.
        if shards is None:
            shards = _env_int(ENV_SHARDS, minimum=1) or (os.cpu_count() or 1)
        elif shards < 1:
            raise BackendError(f"shard count must be >= 1, got {shards}")
        explicit_executor = executor is not None
        if executor is None:
            executor = os.environ.get(ENV_EXECUTOR, "thread")
            if executor not in _EXECUTOR_KINDS:
                _warn_ignored_env(
                    ENV_EXECUTOR, executor, "'thread', 'process' or 'remote'"
                )
                executor = "thread"
        elif executor not in _EXECUTOR_KINDS:
            raise BackendError(
                f"unknown shard executor {executor!r}; "
                f"use one of {_EXECUTOR_KINDS}"
            )
        if executor == "remote":
            from ..cluster import ClusterError, ClusterSpec

            if cluster is None:
                cluster = ClusterSpec.from_env()
            else:
                try:
                    cluster = ClusterSpec.from_spec(cluster)
                except ClusterError as error:
                    raise BackendError(f"invalid cluster spec: {error}") from error
            if cluster is None:
                # The remote executor is useless without hosts.  An explicit
                # choice fails fast; an environment-driven one degrades like
                # every other malformed REPRO_* knob.
                if explicit_executor:
                    raise BackendError(
                        "executor='remote' needs a cluster "
                        "(pass cluster=... or set REPRO_CLUSTER)"
                    )
                _warn_ignored_env(
                    ENV_EXECUTOR,
                    executor,
                    "'remote' with REPRO_CLUSTER set",
                )
                executor = "thread"
        elif cluster is not None:
            raise BackendError(
                f"cluster= only applies to executor='remote', "
                f"not {executor!r}"
            )
        if min_population is None:
            min_population = _env_int(ENV_MIN_POPULATION, minimum=0)
            if min_population is None:
                min_population = DEFAULT_MIN_POPULATION
        elif min_population < 0:
            raise BackendError(
                f"min_population must be >= 0, got {min_population}"
            )
        if isinstance(inner, ComputeBackend):
            if inner is self or inner.name == self.name:
                raise BackendError(
                    "the sharded backend cannot be its own inner backend"
                )
            if executor in ("process", "remote"):
                # Process and remote workers live in separate memory: they
                # can only resolve the inner backend by registered name.
                # The instance still serves every in-process path
                # (delegated small populations), so its private cache keeps
                # working where sharing is even possible.
                get_backend(inner.name)
        elif inner is not None:
            if inner == self.name:
                raise BackendError(
                    "the sharded backend cannot be its own inner backend"
                )
            get_backend(inner)  # unknown names fail here, not at first use
        if retries is None:
            retries = _env_int(ENV_RETRIES, minimum=0)
            if retries is None:
                retries = DEFAULT_RETRIES
        elif retries < 0:
            raise BackendError(f"retries must be >= 0, got {retries}")
        if hedge_ms is None:
            hedge_ms = _env_float(ENV_HEDGE_MS, minimum=0.0, maximum=3.6e6) or 0.0
        elif hedge_ms < 0:
            raise BackendError(f"hedge_ms must be >= 0, got {hedge_ms}")
        if retry_backoff_s < 0:
            raise BackendError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        self.shards = shards
        self.executor_kind = executor
        self.cluster = cluster
        self.min_population = min_population
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.hedge_ms = hedge_ms
        self._hedge_s = hedge_ms / 1000.0
        self._faults = faults
        self._inner_spec = inner
        self._cache = cache
        self._pool: Optional[Executor] = None
        self._pool_lock = threading.Lock()
        self._pool_gen = 0
        # Self-healing counters, surfaced via resilience_stats().
        self.retried = 0
        self.pool_rebuilds = 0
        self.partial_recoveries = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.worker_kills = 0

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    @property
    def inner(self) -> ComputeBackend:
        """The backend every shard runs on (resolved late, per call)."""
        return get_backend(self._inner_ref())

    def _inner_ref(self) -> Union[str, ComputeBackend]:
        """What in-process code resolves the inner backend from."""
        if self._inner_spec is not None:
            return self._inner_spec
        from .dispatch import available_backends

        return "numpy" if "numpy" in available_backends() else "reference"

    def _worker_ref(self) -> Union[str, ComputeBackend]:
        """The inner-backend reference shipped to shard workers.

        Thread workers share this process's memory and receive the
        instance (or name) as-is; process and remote workers receive the
        registered *name* — instances are not picklable-safe across
        interpreters (or machines).
        """
        inner = self._inner_ref()
        if self.executor_kind in ("process", "remote") and isinstance(
            inner, ComputeBackend
        ):
            return inner.name
        return inner

    def _inner_is_numpy(self) -> bool:
        inner = self._worker_ref()
        name = inner.name if isinstance(inner, ComputeBackend) else inner
        return name == "numpy"

    def _executor(self) -> Executor:
        """The lazily created, shared worker pool (double-checked lock)."""
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    # One spare slot when hedging, so a duplicate submission
                    # never queues behind the straggler it is racing.
                    workers = self.shards + (1 if self._hedge_s else 0)
                    if self.executor_kind == "process":
                        pool = ProcessPoolExecutor(max_workers=workers)
                    elif self.executor_kind == "remote":
                        from ..cluster import RemoteShardExecutor

                        pool = RemoteShardExecutor(
                            self.cluster,
                            max_workers=workers,
                            faults=self._faults,
                        )
                    else:
                        pool = ThreadPoolExecutor(
                            max_workers=workers,
                            thread_name_prefix="repro-shard",
                        )
                    self._pool = pool
        return pool

    def close(self) -> None:
        """Shut the worker pool down (it is recreated on next use)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def _delegates(self, flex_offers: Sequence[FlexOffer]) -> bool:
        """Whether the population is too small to be worth fanning out."""
        return (
            self.shards == 1
            or len(flex_offers) < self.min_population
            or len(flex_offers) < self.shards
        )

    def _partition(self, items: Sequence) -> list[Sequence]:
        """Split a sequence into ``shards`` contiguous, near-even chunks."""
        count = len(items)
        base, extra = divmod(count, self.shards)
        chunks = []
        start = 0
        for index in range(self.shards):
            size = base + (1 if index < extra else 0)
            if size == 0:
                break
            chunks.append(items[start : start + size])
            start += size
        return chunks

    def _shard_handles(self, flex_offers: Sequence[FlexOffer]) -> list:
        """Per-shard work units for the measure operations.

        Normally the contiguous offer chunks of :meth:`_partition` — each
        shard worker then packs (or cache-hits) its own chunk.  When the
        whole population's packed matrix is already in the
        :data:`~repro.backend.cache.matrix_cache` — the streaming engine
        publishes its incrementally maintained live matrix there — the
        chunks are carved out of it with :meth:`ProfileMatrix.slice`
        instead, so no shard re-packs at all: after a mutation only the
        engine's O(Δ) maintenance ran, and the fan-out ships C-speed array
        views.  Only meaningful for the thread executor with the NumPy
        inner backend (matrix handles are neither picklable-cheap nor
        consumable by the reference backend's scalar loops).
        """
        chunks = self._partition(flex_offers)
        if self.executor_kind != "thread" or not self._inner_is_numpy():
            return chunks
        try:
            from .matrix import ProfileMatrix
        except ImportError:  # pragma: no cover - numpy inner implies numpy
            return chunks
        cache = self._cache if self._cache is not None else matrix_cache
        matrix = cache.peek(flex_offers)
        if (
            not isinstance(matrix, ProfileMatrix)
            or matrix.size != len(flex_offers)
            or matrix.dead_count
        ):
            return chunks
        handles = []
        start = 0
        for chunk in chunks:
            handles.append(matrix.slice(start, start + len(chunk)))
            start += len(chunk)
        return handles

    def _map(self, worker, arg_lists: Sequence[tuple]) -> list:
        """Run the worker over every shard; results in shard order.

        Results are consumed in submission order, so an exception from
        shard ``i`` surfaces before any later shard's — preserving the
        reference backend's first-offending-offer error positions.  Around
        that contract sits the self-healing loop: infrastructure errors
        (:data:`_RETRYABLE`) re-dispatch just the failed shard — rebuilding
        the pool first when it broke — up to the retry budget, stragglers
        are hedged to the spare slot, and application errors propagate
        untouched on the first attempt.
        """
        futures = [self._submit_shard(worker, args) for args in arg_lists]
        return [
            self._consume_shard(index, future, worker, args)
            for index, (future, args) in enumerate(zip(futures, arg_lists))
        ]

    def _submit_shard(self, worker, args: tuple):
        """Submit one shard; a retryable failure becomes a deferred error.

        The returned future is tagged with the pool generation it ran on,
        so :meth:`_recover_pool` can tell a stale failure (its pool was
        already replaced) from one that must trigger a rebuild.
        """
        try:
            self._fire_fault(SHARD_SUBMIT)
            future = self._executor().submit(worker, *args)
        except _RETRYABLE as error:
            future = _FailedSubmit(error)
        future._repro_pool_gen = self._pool_gen
        return future

    def _consume_shard(self, index: int, future, worker, args: tuple):
        """One shard's result, retrying infrastructure failures in place."""
        attempts = 0
        while True:
            try:
                result = self._await_shard(future, worker, args)
                self._fire_fault(SHARD_RESULT)
                return result
            except _RETRYABLE as error:
                attempts += 1
                if attempts > self.retries:
                    raise BackendError(
                        f"shard {index} failed after {attempts} attempt(s): "
                        f"{error}"
                    ) from error
                self._recover_pool(
                    error, getattr(future, "_repro_pool_gen", self._pool_gen)
                )
                self.retried += 1
                if self.retry_backoff_s:
                    time.sleep(self.retry_backoff_s * attempts)
                future = self._submit_shard(worker, args)

    def _await_shard(self, future, worker, args: tuple):
        """The shard's result, hedging a straggler when configured."""
        if not self._hedge_s or isinstance(future, _FailedSubmit):
            return future.result()
        try:
            return future.result(timeout=self._hedge_s)
        except FutureTimeoutError:
            pass
        self.hedges += 1
        try:
            hedge = self._executor().submit(worker, *args)
        except Exception:
            # Hedging is best-effort acceleration; fall back to waiting.
            return future.result()
        done, _ = wait([future, hedge], return_when=FIRST_COMPLETED)
        if future in done:
            hedge.cancel()
            return future.result()
        self.hedge_wins += 1
        future.cancel()
        return hedge.result()

    def _recover_pool(self, error: BaseException, generation: int) -> None:
        """Replace a broken pool so the retry lands on live workers.

        Only the shards whose futures failed re-dispatch — completed
        futures already yielded their results and are never recomputed —
        and only a failure from the *current* pool generation tears it
        down: when several futures of one broken pool fail together, the
        first rebuilds and the rest land their retries on the fresh pool.
        """
        if not isinstance(error, BrokenExecutor):
            return
        with self._pool_lock:
            if generation != self._pool_gen or self._pool is None:
                return
            # An executor that reports the failure as *partial* — the
            # remote executor after evicting a single host — keeps its
            # pool: tearing it down would discard healthy warm
            # connections and their interning state just to rebuild them.
            recover = getattr(self._pool, "recover", None)
            if callable(recover) and recover(error):
                self.partial_recoveries += 1
                return
            pool, self._pool = self._pool, None
            self._pool_gen += 1
        pool.shutdown(wait=False)
        self.pool_rebuilds += 1

    def _fire_fault(self, site: str) -> None:
        """Fire an injection site; ``kill`` takes down a live worker."""
        if self._faults is None:
            return
        if self._faults.fire(site) is not None:
            self._kill_worker()

    def _kill_worker(self) -> None:
        """Kill one process-pool worker (threads degrade to a raise).

        The kill is asynchronous havoc, exactly like a real worker OOM:
        pending futures on the pool fail with ``BrokenProcessPool`` and
        enter the retry/rebuild path.
        """
        pool = self._pool
        if isinstance(pool, ProcessPoolExecutor):
            processes = list(getattr(pool, "_processes", {}).values())
            if processes:
                processes[0].kill()
                self.worker_kills += 1
                return
        raise FaultInjected("injected worker kill (no process worker to kill)")

    def resilience_stats(self) -> dict:
        """Self-healing counters for health blocks and chaos assertions."""
        return {
            "retries": self.retries,
            "hedge_ms": self.hedge_ms,
            "retried": self.retried,
            "pool_rebuilds": self.pool_rebuilds,
            "partial_recoveries": self.partial_recoveries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "worker_kills": self.worker_kills,
        }

    def cluster_health(self) -> Optional[dict]:
        """Per-host health of the remote executor, ``None`` otherwise.

        ``None`` for local executors and for a remote backend whose pool
        has not been created yet (no request has fanned out); the gateway
        ``/healthz`` cluster row treats both as "nothing to report".
        """
        pool = self._pool
        health = getattr(pool, "health", None)
        return health() if callable(health) else None

    # ------------------------------------------------------------------ #
    # Measures
    # ------------------------------------------------------------------ #
    def measure_values(
        self, measure: "FlexibilityMeasure", flex_offers: Sequence[FlexOffer]
    ) -> list[float]:
        flex_offers = list(flex_offers)
        if self._delegates(flex_offers):
            return self.inner.measure_values(measure, flex_offers)
        inner = self._worker_ref()
        outcomes = self._map(
            _shard_values_outcome,
            [(inner, measure, chunk) for chunk in self._shard_handles(flex_offers)],
        )
        values: list[float] = []
        for status, payload in outcomes:
            if status == "error":
                raise payload
            values.extend(payload)
        return values

    def measure_support(
        self, measure: "FlexibilityMeasure", flex_offers: Sequence[FlexOffer]
    ) -> list[bool]:
        flex_offers = list(flex_offers)
        if self._delegates(flex_offers):
            return self.inner.measure_support(measure, flex_offers)
        inner = self._worker_ref()
        verdicts: list[bool] = []
        for shard in self._map(
            _shard_support,
            [(inner, measure, chunk) for chunk in self._shard_handles(flex_offers)],
        ):
            verdicts.extend(shard)
        return verdicts

    def evaluate_population(
        self,
        measures: Sequence["FlexibilityMeasure"],
        flex_offers: Sequence[FlexOffer],
        skip_unsupported: bool = True,
    ) -> tuple[dict[str, float], list[str]]:
        flex_offers = list(flex_offers)
        if self._delegates(flex_offers):
            return self.inner.evaluate_population(
                measures, flex_offers, skip_unsupported
            )
        inner = self._worker_ref()
        chunks = self._shard_handles(flex_offers)
        # One fan-out per call: each shard packs once, then reports support
        # verdicts and value outcomes for every decomposable measure.
        # Non-decomposable measures (overridden ``set_value``) get support
        # verdicts only — their own override runs on the full population.
        value_mask = [not self._overrides_set_value(measure) for measure in measures]
        shard_rows = self._map(
            _shard_evaluate,
            [
                (inner, measures, value_mask, chunk, skip_unsupported)
                for chunk in chunks
            ],
        )
        # Assembly is measure-major, like the reference backend's loop, so
        # the skip list and the position at which any error surfaces (a
        # raising ``supports`` included) match: measure by measure, support
        # first — with shard-granular short-circuiting, so an unsupported
        # verdict in an earlier shard wins over a raising ``supports`` in a
        # later one, mirroring the lazily evaluated `all()` — then values,
        # lowest failing shard first.
        values: dict[str, float] = {}
        skipped: list[str] = []
        for index, measure in enumerate(measures):
            supported = True
            for rows in shard_rows:
                status, payload = rows[index][0]
                if status == "error":
                    raise payload
                if not payload:
                    supported = False
                    break
            if not supported and skip_unsupported:
                skipped.append(measure.key)
                continue
            if not value_mask[index]:
                values[measure.key] = measure.set_value(flex_offers)
                continue
            per_offer: list[float] = []
            for rows in shard_rows:
                status, payload = rows[index][1]
                if status == "error":
                    raise payload
                per_offer.extend(payload)
            values[measure.key] = measure.combine_values(per_offer)
        return values, skipped

    def per_offer_values(
        self,
        measures: Sequence["FlexibilityMeasure"],
        flex_offers: Sequence[FlexOffer],
    ) -> list[dict[str, float]]:
        flex_offers = list(flex_offers)
        if self._delegates(flex_offers):
            return self.inner.per_offer_values(measures, flex_offers)
        inner = self._worker_ref()
        results: list[dict[str, float]] = []
        for shard in self._map(
            _shard_per_offer,
            [(inner, measures, chunk) for chunk in self._shard_handles(flex_offers)],
        ):
            results.extend(shard)
        return results

    # ------------------------------------------------------------------ #
    # Windowed analytics
    # ------------------------------------------------------------------ #
    def measure_window(self, capacity: int):
        """Window construction is not shardable; the inner backend decides."""
        return self.inner.measure_window(capacity)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate_columns(
        self, members: Sequence[FlexOffer]
    ) -> tuple[int, list[int], list[tuple[int, int]]]:
        members = list(members)
        if self._delegates(members):
            return self.inner.aggregate_columns(members)
        inner = self._worker_ref()
        shards = self._map(
            _shard_aggregate,
            [(inner, chunk) for chunk in self._partition(members)],
        )
        # Re-anchor every shard at the global earliest start and add the
        # shifted column sums — pure integer arithmetic, so the merge equals
        # the single-pass result exactly.
        anchor = min(shard_anchor for shard_anchor, _, _ in shards)
        horizon = max(
            shard_anchor - anchor + len(columns)
            for shard_anchor, _, columns in shards
        )
        low = [0] * horizon
        high = [0] * horizon
        offsets: list[int] = []
        for shard_anchor, shard_offsets, columns in shards:
            shift = shard_anchor - anchor
            offsets.extend(offset + shift for offset in shard_offsets)
            for index, (column_low, column_high) in enumerate(columns):
                low[shift + index] += column_low
                high[shift + index] += column_high
        return anchor, offsets, list(zip(low, high))

    # ------------------------------------------------------------------ #
    # Assignments
    # ------------------------------------------------------------------ #
    def feasible_profiles(
        self, flex_offers: Sequence[FlexOffer], target: str
    ) -> list[tuple[int, ...]]:
        if target not in ("min", "max"):
            raise ValueError(f"unknown target {target!r}")
        flex_offers = list(flex_offers)
        if self._delegates(flex_offers):
            return self.inner.feasible_profiles(flex_offers, target)
        inner = self._worker_ref()
        profiles: list[tuple[int, ...]] = []
        for shard in self._map(
            _shard_profiles,
            [(inner, chunk, target) for chunk in self._partition(flex_offers)],
        ):
            profiles.extend(shard)
        return profiles

    def assignment_feasibility(
        self,
        flex_offers: Sequence[FlexOffer],
        starts: Sequence[int],
        values: Sequence[Sequence[int]],
    ) -> list[bool]:
        # Pair triples before partitioning: mismatched input lengths must
        # truncate like the reference backend's zip, not skew the shard
        # boundaries into silently checking offer i against candidate i-1.
        count = min(len(flex_offers), len(starts), len(values))
        flex_offers = list(flex_offers)[:count]
        starts = list(starts)[:count]
        values = list(values)[:count]
        if self._delegates(flex_offers):
            return self.inner.assignment_feasibility(flex_offers, starts, values)
        inner = self._worker_ref()
        offer_chunks = self._partition(flex_offers)
        start_chunks = self._partition(starts)
        value_chunks = self._partition(values)
        verdicts: list[bool] = []
        for shard in self._map(
            _shard_feasibility,
            [
                (inner, offers, shard_starts, shard_values)
                for offers, shard_starts, shard_values in zip(
                    offer_chunks, start_chunks, value_chunks
                )
            ],
        ):
            verdicts.extend(shard)
        return verdicts

    # ------------------------------------------------------------------ #
    # Scheduling objectives
    # ------------------------------------------------------------------ #
    def batch_objectives(
        self,
        schedules: Sequence[Sequence[tuple[int, Sequence[int]]]],
        reference=None,
        metric: str = "absolute",
    ) -> list[float]:
        """Schedule-partitioned fan-out of the generation objective.

        Each schedule's objective is independent of the others, so the
        generation is partitioned like a population and the per-shard
        results concatenate in shard order — bit-identical to the inner
        backend's single-call result.  Typical generations are far below
        ``min_population`` and delegate whole; the fan-out matters for
        tournament-sized sweeps scored in one call.
        """
        if metric not in ("absolute", "squared"):
            raise ValueError(f"unknown imbalance metric {metric!r}")
        schedules = list(schedules)
        if self._delegates(schedules):
            return self.inner.batch_objectives(schedules, reference, metric)
        inner = self._worker_ref()
        results: list[float] = []
        for shard in self._map(
            _shard_objectives,
            [
                (inner, chunk, reference, metric)
                for chunk in self._partition(schedules)
            ],
        ):
            results.extend(shard)
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardedBackend shards={self.shards} executor={self.executor_kind!r} "
            f"inner={self._inner_ref()!r} "
            f"min_population={self.min_population}>"
        )


register_backend(ShardedBackend())
