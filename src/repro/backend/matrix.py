"""Packed NumPy representation of a flex-offer population.

A :class:`~repro.core.flexoffer.FlexOffer` population is *ragged*: every
offer has its own profile length.  :class:`ProfileMatrix` packs the whole
population into flat ``int64`` arrays plus an ``offsets`` index (the CSR
idiom), so per-slice quantities live in one contiguous ``amin``/``amax``
pair and per-offer reductions become single ``ufunc.reduceat`` calls:

* ``offsets[i]:offsets[i+1]`` is offer ``i``'s slice range inside the packed
  arrays;
* ``owner`` maps a packed position back to its offer index, ``within`` to
  its slice index — the two gather/scatter keys every vectorized hot path
  uses.

Derived quantities (profile sums, effective per-slice bounds under the total
constraints, sign-class masks) are computed lazily and cached; all of them
are exact integer arithmetic, which is what lets the NumPy backend match the
reference implementation bit-for-bit on integer paths.

Incremental lifecycle
---------------------
A matrix is no longer only a one-shot pack: it can be maintained *live*
under per-event population deltas, which is what the streaming engine does
instead of throwing the packed arrays away on every mutation:

* :meth:`ProfileMatrix.append` adds offers at the end in amortized O(Δ)
  (capacity-doubling storage, one Python sweep over the new offers only);
* :meth:`ProfileMatrix.tombstone` marks rows dead in O(Δ) without moving
  any data; dead rows are skipped through the :attr:`alive` mask;
* :meth:`ProfileMatrix.compact` drops the dead rows with one vectorized
  boolean gather, leaving arrays bit-identical to a fresh pack of the
  survivors.  Compaction triggers automatically once the tombstone ratio
  reaches ``compact_threshold`` (the ``REPRO_MATRIX_COMPACT`` knob), so the
  per-event cost stays amortized O(Δ);
* :meth:`ProfileMatrix.snapshot` publishes a zero-copy frozen view of the
  current rows (safe because rows are never mutated in place — appends
  write beyond the view, compaction replaces the backing stores);
* :meth:`ProfileMatrix.slice` carves a contiguous sub-population out as its
  own matrix — the sharded backend's per-shard handles — again without a
  Python re-pack.

Bulk consumers (the compute backends) require a matrix without live
tombstones; the streaming engine compacts before publishing.

This module imports NumPy at module level and is therefore only imported by
the NumPy backend; everything else in the library must keep working when the
import fails.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from functools import cached_property
from typing import Optional

import numpy as np

from ..core.flexoffer import FlexOffer

__all__ = [
    "ProfileMatrix",
    "VALUE_LIMIT",
    "SLICE_LIMIT",
    "DENSE_CELL_LIMIT",
    "ENV_COMPACT_VAR",
    "DEFAULT_COMPACT_THRESHOLD",
]

_INT64 = np.int64

#: Magnitude cap on every packed scalar (bounds, constraints, times) and
#: length cap on a single profile.  Individual values fitting ``int64`` is
#: not enough: derived *sums* (profile totals, aligned column sums, running
#: assignment totals) must stay exactly representable too.  With elements
#: bounded by 2^40 and profiles by 2^20 slices, every per-offer sum stays
#: below 2^61 — comfortably inside ``int64`` — so the NumPy backend can
#: promise bit-exact integer arithmetic; anything larger raises
#: ``OverflowError`` at construction and falls back to the reference
#: backend's Python big integers.
VALUE_LIMIT = 1 << 40
SLICE_LIMIT = 1 << 20

#: Cell cap for dense padded matrices (the series-difference and area-extent
#: kernels).  The kernels materialise up to ~5 transient arrays of this
#: shape (pads, extents, powers), so the cap is sized such that the total
#: stays in the hundreds of MB; populations beyond it are evaluated through
#: the scalar loops, which only need O(per-offer width) memory.
DENSE_CELL_LIMIT = 10_000_000

#: Environment variable holding the tombstone ratio that triggers automatic
#: compaction of a live matrix (a float in ``[0, 1]``; ``0`` compacts on
#: every tombstone, ``1`` only once every row is dead).
ENV_COMPACT_VAR = "REPRO_MATRIX_COMPACT"

#: Tombstone ratio when ``REPRO_MATRIX_COMPACT`` is unset: compact once a
#: quarter of the rows are dead.  Low enough that the O(live) gather stays
#: amortized O(1) per tombstone, high enough that eviction bursts do not
#: compact on every event.
DEFAULT_COMPACT_THRESHOLD = 0.25

#: Per-offer int64 store names, gathered/grown together.
_OFFER_STORES = ("_tes", "_tls", "_cmin", "_cmax", "_durations")

#: Instance-dict names of every lazily cached derived quantity; popped on
#: each structural mutation so the next access recomputes over the new rows.
_DERIVED_CACHES = (
    "owner",
    "within",
    "profile_min",
    "profile_max",
    "time_flexibility",
    "energy_flexibility",
    "effective_amin",
    "effective_amax",
    "is_consumption",
    "is_production",
    "is_mixed",
    "area_sizes",
)


def _compact_threshold(value: Optional[float]) -> float:
    """Resolve the compaction threshold (argument > env knob > default)."""
    if value is not None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(
                f"compact_threshold must lie in [0, 1], got {value}"
            )
        return float(value)
    from .dispatch import _env_float

    environment = _env_float(ENV_COMPACT_VAR, 0.0, 1.0)
    return DEFAULT_COMPACT_THRESHOLD if environment is None else environment


class ProfileMatrix:
    """A flex-offer population as packed ``(amin, amax)`` arrays.

    Parameters
    ----------
    flex_offers:
        The population, in evaluation order.  Order is preserved everywhere:
        row ``i`` of every per-offer array describes ``offers[i]``.
    compact_threshold:
        Tombstone ratio at which :meth:`tombstone` compacts automatically;
        ``None`` reads ``REPRO_MATRIX_COMPACT`` and falls back to
        :data:`DEFAULT_COMPACT_THRESHOLD`.  Only relevant for matrices
        maintained live.

    Raises
    ------
    OverflowError
        When any bound or constraint does not fit ``int64`` (the library's
        scalar model allows arbitrary Python integers); callers fall back to
        the reference backend in that case.
    """

    def __init__(
        self,
        flex_offers: Iterable[FlexOffer],
        compact_threshold: Optional[float] = None,
    ) -> None:
        offers = list(flex_offers)
        arrays = self._sweep(offers)
        self._check_arrays(*arrays)
        self._offers: list[FlexOffer] = offers
        self._offers_tuple: Optional[tuple[FlexOffer, ...]] = None
        self._frozen = False
        self._dead = 0
        self.compact_threshold = _compact_threshold(compact_threshold)
        tes, tls, cmin, cmax, durations, amin, amax = arrays
        self._tes = tes
        self._tls = tls
        self._cmin = cmin
        self._cmax = cmax
        self._durations = durations
        n = len(offers)
        self._offsets = np.zeros(n + 1, dtype=_INT64)
        np.cumsum(durations, out=self._offsets[1:])
        self._amin = amin
        self._amax = amax
        self._alive = np.ones(n, dtype=bool)
        self.size = n
        self._refresh_views()

    # ------------------------------------------------------------------ #
    # Packing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _sweep(offers: Sequence[FlexOffer]) -> tuple[np.ndarray, ...]:
        """One Python pass over ``offers`` into the seven packed arrays.

        The Python-level attribute reads dominate packing cost, so every
        per-offer and per-slice field is collected in one sweep before
        handing over to NumPy.  Shared by construction and :meth:`append`
        (which sweeps only the delta).
        """
        tes: list[int] = []
        tls: list[int] = []
        cmin: list[int] = []
        cmax: list[int] = []
        durations: list[int] = []
        amin: list[int] = []
        amax: list[int] = []
        for flex_offer in offers:
            tes.append(flex_offer.earliest_start)
            tls.append(flex_offer.latest_start)
            cmin.append(flex_offer.total_energy_min)
            cmax.append(flex_offer.total_energy_max)
            slices = flex_offer.slices
            durations.append(len(slices))
            for energy_slice in slices:
                amin.append(energy_slice.amin)
                amax.append(energy_slice.amax)
        return (
            np.array(tes, dtype=_INT64),
            np.array(tls, dtype=_INT64),
            np.array(cmin, dtype=_INT64),
            np.array(cmax, dtype=_INT64),
            np.array(durations, dtype=_INT64),
            np.array(amin, dtype=_INT64),
            np.array(amax, dtype=_INT64),
        )

    @staticmethod
    def _check_arrays(tes, tls, cmin, cmax, durations, amin, amax) -> None:
        """Reject rows whose *derived sums* could leave ``int64``."""
        for values in (tes, tls, cmin, cmax, amin, amax):
            if values.size and int(np.abs(values).max()) > VALUE_LIMIT:
                raise OverflowError(
                    f"flex-offer magnitudes beyond {VALUE_LIMIT} are not "
                    "packable without risking inexact int64 sums"
                )
        if durations.size and int(durations.max()) > SLICE_LIMIT:
            raise OverflowError(
                f"profiles longer than {SLICE_LIMIT} slices are not packable "
                "without risking inexact int64 sums"
            )

    def _refresh_views(self) -> None:
        """Re-point the public arrays at the live prefix of the stores.

        The kernels read plain attributes (no property indirection on the
        hot paths); after every structural mutation the attributes are
        re-sliced so they cover exactly the first ``size`` rows.
        """
        n = self.size
        total = int(self._offsets[n])
        self.tes = self._tes[:n]
        self.tls = self._tls[:n]
        self.cmin = self._cmin[:n]
        self.cmax = self._cmax[:n]
        self.durations = self._durations[:n]
        self.offsets = self._offsets[: n + 1]
        self.amin = self._amin[:total]
        self.amax = self._amax[:total]
        self.alive = self._alive[:n]

    def _invalidate_derived(self) -> None:
        for name in _DERIVED_CACHES:
            self.__dict__.pop(name, None)
        self._offers_tuple = None

    # ------------------------------------------------------------------ #
    # Incremental lifecycle
    # ------------------------------------------------------------------ #
    @property
    def offers(self) -> tuple[FlexOffer, ...]:
        """The packed offers, row-aligned (tombstoned rows included)."""
        if self._offers_tuple is None:
            self._offers_tuple = tuple(self._offers)
        return self._offers_tuple

    @property
    def dead_count(self) -> int:
        """Number of tombstoned rows awaiting compaction."""
        return self._dead

    @property
    def live_count(self) -> int:
        """Number of surviving (non-tombstoned) rows."""
        return self.size - self._dead

    def _require_mutable(self) -> None:
        if self._frozen:
            raise ValueError(
                "this ProfileMatrix is a frozen snapshot; mutate the live "
                "matrix it was taken from instead"
            )

    def _grow(self, extra_offers: int, extra_slices: int) -> None:
        """Ensure capacity for ``extra`` rows/slices (geometric growth)."""
        need = self.size + extra_offers
        if need > len(self._tes):
            new_cap = max(need, 2 * len(self._tes), 8)
            for name in _OFFER_STORES:
                store = getattr(self, name)
                grown = np.empty(new_cap, dtype=_INT64)
                grown[: self.size] = store[: self.size]
                setattr(self, name, grown)
            offsets = np.empty(new_cap + 1, dtype=_INT64)
            offsets[: self.size + 1] = self._offsets[: self.size + 1]
            self._offsets = offsets
            alive = np.empty(new_cap, dtype=bool)
            alive[: self.size] = self._alive[: self.size]
            self._alive = alive
        total = int(self._offsets[self.size])
        need = total + extra_slices
        if need > len(self._amin):
            new_cap = max(need, 2 * len(self._amin), 8)
            for name in ("_amin", "_amax"):
                store = getattr(self, name)
                grown = np.empty(new_cap, dtype=_INT64)
                grown[:total] = store[:total]
                setattr(self, name, grown)

    def _append_one(self, flex_offer: FlexOffer) -> None:
        """Scalar fast path of :meth:`append` for a single offer.

        The streaming engine appends one offer per arrival event; building
        seven one-element NumPy arrays (plus their vectorized validity
        checks) dominates that path, so the single-offer case validates
        with Python comparisons and writes scalars straight into the
        stores.  Semantics are identical to the batch path, including the
        validate-before-write atomicity.
        """
        tes = flex_offer.earliest_start
        tls = flex_offer.latest_start
        cmin = flex_offer.total_energy_min
        cmax = flex_offer.total_energy_max
        slices = flex_offer.slices
        limit = VALUE_LIMIT
        overflow = (
            tes > limit or tes < -limit
            or tls > limit or tls < -limit
            or cmin > limit or cmin < -limit
            or cmax > limit or cmax < -limit
        )
        if not overflow:
            for energy_slice in slices:
                amin = energy_slice.amin
                amax = energy_slice.amax
                if amin > limit or amin < -limit or amax > limit or amax < -limit:
                    overflow = True
                    break
        if overflow:
            raise OverflowError(
                f"flex-offer magnitudes beyond {limit} are not packable "
                "without risking inexact int64 sums"
            )
        if len(slices) > SLICE_LIMIT:
            raise OverflowError(
                f"profiles longer than {SLICE_LIMIT} slices are not packable "
                "without risking inexact int64 sums"
            )
        self._grow(1, len(slices))
        n = self.size
        self._tes[n] = tes
        self._tls[n] = tls
        self._cmin[n] = cmin
        self._cmax[n] = cmax
        self._durations[n] = len(slices)
        total = int(self._offsets[n])
        self._offsets[n + 1] = total + len(slices)
        for position, energy_slice in enumerate(slices, start=total):
            self._amin[position] = energy_slice.amin
            self._amax[position] = energy_slice.amax
        self._alive[n] = True
        self._offers.append(flex_offer)
        self.size = n + 1
        self._refresh_views()
        self._invalidate_derived()

    def append(self, flex_offers: Iterable[FlexOffer]) -> None:
        """Append offers at the end, amortized O(Δ).

        The new rows are swept and validated *before* anything is written,
        so an ``OverflowError`` (unpackable magnitudes) leaves the matrix
        exactly as it was — callers degrade to their scalar path without a
        torn state.
        """
        self._require_mutable()
        new = list(flex_offers)
        if not new:
            return
        if len(new) == 1:
            self._append_one(new[0])
            return
        arrays = self._sweep(new)
        self._check_arrays(*arrays)
        tes, tls, cmin, cmax, durations, amin, amax = arrays
        k = len(new)
        self._grow(k, len(amin))
        n = self.size
        self._tes[n : n + k] = tes
        self._tls[n : n + k] = tls
        self._cmin[n : n + k] = cmin
        self._cmax[n : n + k] = cmax
        self._durations[n : n + k] = durations
        np.cumsum(durations, out=self._offsets[n + 1 : n + k + 1])
        self._offsets[n + 1 : n + k + 1] += self._offsets[n]
        total = int(self._offsets[n])
        self._amin[total : total + len(amin)] = amin
        self._amax[total : total + len(amax)] = amax
        self._alive[n : n + k] = True
        self._offers.extend(new)
        self.size = n + k
        self._refresh_views()
        self._invalidate_derived()

    def tombstone(self, rows: Sequence[int]) -> Optional[np.ndarray]:
        """Mark rows dead in O(Δ); auto-compacts past the threshold.

        Returns the array of surviving old row indices when the tombstone
        ratio reached ``compact_threshold`` and a compaction ran, ``None``
        otherwise — callers maintaining row-aligned side structures (the
        streaming engine's value columns) gather by the same indices.
        Already-dead rows are ignored.  Tombstoning never touches row data,
        so the lazily cached derived arrays stay valid until compaction.
        """
        self._require_mutable()
        for row in rows:
            index = int(row)
            if not 0 <= index < self.size:
                raise IndexError(f"row {index} outside 0..{self.size - 1}")
            if self.alive[index]:
                self._alive[index] = False
                self._dead += 1
        if self._dead and self._dead >= self.compact_threshold * self.size:
            return self.compact()
        return None

    def compact(self) -> np.ndarray:
        """Drop tombstoned rows with one vectorized gather.

        Order-preserving, so the compacted arrays are bit-identical to a
        fresh pack of the surviving offers.  Returns the surviving old row
        indices (``arange(size)`` when nothing was dead).
        """
        self._require_mutable()
        if self._dead == 0:
            return np.arange(self.size, dtype=_INT64)
        keep = np.flatnonzero(self.alive)
        slice_keep = np.repeat(self.alive, self.durations)
        self._tes = self.tes[keep]
        self._tls = self.tls[keep]
        self._cmin = self.cmin[keep]
        self._cmax = self.cmax[keep]
        durations = self.durations[keep]
        self._durations = durations
        self._amin = self.amin[slice_keep]
        self._amax = self.amax[slice_keep]
        n = len(keep)
        self._offsets = np.zeros(n + 1, dtype=_INT64)
        np.cumsum(durations, out=self._offsets[1:])
        self._alive = np.ones(n, dtype=bool)
        self._offers = [self._offers[int(index)] for index in keep]
        self._dead = 0
        self.size = n
        self._refresh_views()
        self._invalidate_derived()
        return keep

    def snapshot(self) -> "ProfileMatrix":
        """A frozen zero-copy view of the current rows (compact first).

        Row data is never mutated in place — :meth:`append` writes beyond
        the snapshot's views and :meth:`compact` replaces the backing
        stores — so the snapshot stays bit-stable while the live matrix
        keeps evolving.  Snapshots refuse further mutation (they share
        storage with the live matrix) and are what the streaming engine
        publishes into the :data:`~repro.backend.cache.matrix_cache`.
        """
        if self._dead:
            raise ValueError("compact() before snapshotting a live matrix")
        clone = object.__new__(ProfileMatrix)
        clone._offers = self._offers[:]
        clone._offers_tuple = None
        clone._frozen = True
        clone._dead = 0
        clone.compact_threshold = self.compact_threshold
        clone._tes = self.tes
        clone._tls = self.tls
        clone._cmin = self.cmin
        clone._cmax = self.cmax
        clone._durations = self.durations
        clone._offsets = self.offsets
        clone._amin = self.amin
        clone._amax = self.amax
        clone._alive = self.alive
        clone.size = self.size
        clone._refresh_views()
        return clone

    def slice(self, start: int, stop: int) -> "ProfileMatrix":
        """A matrix over rows ``start:stop`` without a Python re-pack.

        Shares the packed storage (contiguous array views; only ``offsets``
        is rebased into a small copy), so carving a shard out of a cached
        whole-population matrix is C-speed.  The result is frozen, like
        :meth:`snapshot`, and requires a tombstone-free source.
        """
        if self._dead:
            raise ValueError("compact() before slicing a live matrix")
        if not 0 <= start <= stop <= self.size:
            raise IndexError(
                f"slice [{start}:{stop}] outside 0..{self.size}"
            )
        clone = object.__new__(ProfileMatrix)
        clone._offers = self._offers[start:stop]
        clone._offers_tuple = None
        clone._frozen = True
        clone._dead = 0
        clone.compact_threshold = self.compact_threshold
        clone._tes = self.tes[start:stop]
        clone._tls = self.tls[start:stop]
        clone._cmin = self.cmin[start:stop]
        clone._cmax = self.cmax[start:stop]
        clone._durations = self.durations[start:stop]
        clone._offsets = (
            self.offsets[start : stop + 1] - self.offsets[start]
        )
        low = int(self.offsets[start])
        high = int(self.offsets[stop])
        clone._amin = self.amin[low:high]
        clone._amax = self.amax[low:high]
        clone._alive = self.alive[start:stop]
        clone.size = stop - start
        clone._refresh_views()
        return clone

    # ------------------------------------------------------------------ #
    # Packed indexing helpers
    # ------------------------------------------------------------------ #
    @property
    def starts(self) -> np.ndarray:
        """Segment start indices (``offsets`` without the trailing total)."""
        return self.offsets[:-1]

    @cached_property
    def owner(self) -> np.ndarray:
        """Offer index of every packed slice position."""
        return np.repeat(np.arange(self.size, dtype=_INT64), self.durations)

    @cached_property
    def within(self) -> np.ndarray:
        """Slice index (0-based, per offer) of every packed position."""
        total = int(self.offsets[-1]) if self.size else 0
        return np.arange(total, dtype=_INT64) - np.repeat(
            self.starts, self.durations
        )

    def _reduce(self, ufunc: np.ufunc, values: np.ndarray) -> np.ndarray:
        """Per-offer reduction of a packed array (empty-safe)."""
        if self.size == 0:
            return np.zeros(0, dtype=values.dtype)
        return ufunc.reduceat(values, self.starts)

    # ------------------------------------------------------------------ #
    # Per-offer derived quantities
    # ------------------------------------------------------------------ #
    @cached_property
    def profile_min(self) -> np.ndarray:
        """Sum of the per-slice minima per offer."""
        return self._reduce(np.add, self.amin)

    @cached_property
    def profile_max(self) -> np.ndarray:
        """Sum of the per-slice maxima per offer."""
        return self._reduce(np.add, self.amax)

    @cached_property
    def time_flexibility(self) -> np.ndarray:
        """``tls − tes`` per offer."""
        return self.tls - self.tes

    @cached_property
    def energy_flexibility(self) -> np.ndarray:
        """``cmax − cmin`` per offer."""
        return self.cmax - self.cmin

    # ------------------------------------------------------------------ #
    # Effective bounds under the total constraints
    # ------------------------------------------------------------------ #
    @cached_property
    def effective_amin(self) -> np.ndarray:
        """Packed effective slice minima (``FlexOffer.effective_slice_bounds``)."""
        rest_max = self.profile_max[self.owner] - self.amax
        return np.maximum(self.amin, self.cmin[self.owner] - rest_max)

    @cached_property
    def effective_amax(self) -> np.ndarray:
        """Packed effective slice maxima."""
        rest_min = self.profile_min[self.owner] - self.amin
        return np.minimum(self.amax, self.cmax[self.owner] - rest_min)

    # ------------------------------------------------------------------ #
    # Sign classification (Section 2)
    # ------------------------------------------------------------------ #
    @cached_property
    def is_consumption(self) -> np.ndarray:
        """Per-offer mask: every slice non-negative (checked first, like
        :attr:`FlexOffer.kind` — an all-zero offer classifies as consumption)."""
        return self._reduce(np.minimum, self.amin) >= 0

    @cached_property
    def is_production(self) -> np.ndarray:
        """Per-offer mask: not consumption and every slice non-positive."""
        return ~self.is_consumption & (self._reduce(np.maximum, self.amax) <= 0)

    @cached_property
    def is_mixed(self) -> np.ndarray:
        """Per-offer mask: neither pure consumption nor pure production."""
        return ~self.is_consumption & ~self.is_production

    # ------------------------------------------------------------------ #
    # Area geometry (Definitions 9–10)
    # ------------------------------------------------------------------ #
    @cached_property
    def area_sizes(self) -> list[int]:
        """Union-of-areas size per offer (``flexoffer_area_size``, batch).

        Per-column extents are accumulated across the start shifts with one
        masked ``maximum``/``minimum`` sweep per shift, each covering every
        offer simultaneously; all arithmetic is integer, so the results
        equal the scalar path exactly.  Populations whose padded column
        space would exceed :data:`DENSE_CELL_LIMIT` cells are evaluated
        through the scalar loop instead.  Cached — the absolute and relative
        area measures both need the sizes during one ``evaluate_set`` pass.
        """
        from ..core.area import flexoffer_area_size

        if self.size == 0:
            return []
        duration_max = int(self.durations.max())
        shift_max = int(self.time_flexibility.max())
        width = duration_max + shift_max
        # Beyond 2^21 columns a single offer's area (width × extent, extents
        # bounded by 2·VALUE_LIMIT) could leave the exactly-representable
        # int64 range, so those populations take the big-integer scalar loop
        # alongside the dense-matrix memory cap.
        if self.size * width > DENSE_CELL_LIMIT or width > (1 << 21):
            return [flexoffer_area_size(flex_offer) for flex_offer in self.offers]
        # Per-offer padded profile of the column contributions: the padding
        # value 0 is neutral (an uncovered column spans no cells either way).
        high_pad = np.zeros((self.size, duration_max), dtype=_INT64)
        low_pad = np.zeros((self.size, duration_max), dtype=_INT64)
        high_pad[self.owner, self.within] = np.maximum(self.effective_amax, 0)
        low_pad[self.owner, self.within] = np.minimum(self.effective_amin, 0)
        extent_high = np.zeros((self.size, width), dtype=_INT64)
        extent_low = np.zeros((self.size, width), dtype=_INT64)
        time_flex = self.time_flexibility
        for shift in range(shift_max + 1):
            active = (time_flex >= shift)[:, None]
            window_high = extent_high[:, shift : shift + duration_max]
            np.maximum(window_high, high_pad, out=window_high, where=active)
            window_low = extent_low[:, shift : shift + duration_max]
            np.minimum(window_low, low_pad, out=window_low, where=active)
        return (extent_high.sum(axis=1) - extent_low.sum(axis=1)).tolist()

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def take(self, indices: Sequence[int]) -> "ProfileMatrix":
        """A new matrix over the offers at ``indices`` (order preserved).

        Used when a measure supports only part of the population; rebuilt
        from the retained offers — simple, and the subset case is rare
        enough that cleverer packed gathering is not worth its surface.
        """
        return ProfileMatrix([self._offers[int(i)] for i in indices])

    def profiles(self, packed: np.ndarray) -> list[tuple[int, ...]]:
        """Split a packed per-slice array back into per-offer tuples."""
        bounds = self.offsets.tolist()
        values = packed.tolist()
        return [
            tuple(values[bounds[i] : bounds[i + 1]]) for i in range(self.size)
        ]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dead = f", {self._dead} dead" if self._dead else ""
        return (
            f"ProfileMatrix({self.size} offers, "
            f"{int(self.offsets[-1])} slices{dead})"
        )
