"""Packed NumPy representation of a flex-offer population.

A :class:`~repro.core.flexoffer.FlexOffer` population is *ragged*: every
offer has its own profile length.  :class:`ProfileMatrix` packs the whole
population into flat ``int64`` arrays plus an ``offsets`` index (the CSR
idiom), so per-slice quantities live in one contiguous ``amin``/``amax``
pair and per-offer reductions become single ``ufunc.reduceat`` calls:

* ``offsets[i]:offsets[i+1]`` is offer ``i``'s slice range inside the packed
  arrays;
* ``owner`` maps a packed position back to its offer index, ``within`` to
  its slice index — the two gather/scatter keys every vectorized hot path
  uses.

Derived quantities (profile sums, effective per-slice bounds under the total
constraints, sign-class masks) are computed lazily and cached; all of them
are exact integer arithmetic, which is what lets the NumPy backend match the
reference implementation bit-for-bit on integer paths.

This module imports NumPy at module level and is therefore only imported by
the NumPy backend; everything else in the library must keep working when the
import fails.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from functools import cached_property

import numpy as np

from ..core.flexoffer import FlexOffer

__all__ = ["ProfileMatrix", "VALUE_LIMIT", "SLICE_LIMIT", "DENSE_CELL_LIMIT"]

_INT64 = np.int64

#: Magnitude cap on every packed scalar (bounds, constraints, times) and
#: length cap on a single profile.  Individual values fitting ``int64`` is
#: not enough: derived *sums* (profile totals, aligned column sums, running
#: assignment totals) must stay exactly representable too.  With elements
#: bounded by 2^40 and profiles by 2^20 slices, every per-offer sum stays
#: below 2^61 — comfortably inside ``int64`` — so the NumPy backend can
#: promise bit-exact integer arithmetic; anything larger raises
#: ``OverflowError`` at construction and falls back to the reference
#: backend's Python big integers.
VALUE_LIMIT = 1 << 40
SLICE_LIMIT = 1 << 20

#: Cell cap for dense padded matrices (the series-difference and area-extent
#: kernels).  The kernels materialise up to ~5 transient arrays of this
#: shape (pads, extents, powers), so the cap is sized such that the total
#: stays in the hundreds of MB; populations beyond it are evaluated through
#: the scalar loops, which only need O(per-offer width) memory.
DENSE_CELL_LIMIT = 10_000_000


class ProfileMatrix:
    """A flex-offer population as packed ``(amin, amax)`` arrays.

    Parameters
    ----------
    flex_offers:
        The population, in evaluation order.  Order is preserved everywhere:
        row ``i`` of every per-offer array describes ``offers[i]``.

    Raises
    ------
    OverflowError
        When any bound or constraint does not fit ``int64`` (the library's
        scalar model allows arbitrary Python integers); callers fall back to
        the reference backend in that case.
    """

    def __init__(self, flex_offers: Iterable[FlexOffer]) -> None:
        offers = tuple(flex_offers)
        self.offers: tuple[FlexOffer, ...] = offers
        n = len(offers)
        self.size = n
        # Single pass over the population: the Python-level attribute reads
        # dominate construction cost, so every per-offer and per-slice field
        # is collected in one sweep before handing over to NumPy.
        tes: list[int] = []
        tls: list[int] = []
        cmin: list[int] = []
        cmax: list[int] = []
        durations: list[int] = []
        amin: list[int] = []
        amax: list[int] = []
        for flex_offer in offers:
            tes.append(flex_offer.earliest_start)
            tls.append(flex_offer.latest_start)
            cmin.append(flex_offer.total_energy_min)
            cmax.append(flex_offer.total_energy_max)
            slices = flex_offer.slices
            durations.append(len(slices))
            for energy_slice in slices:
                amin.append(energy_slice.amin)
                amax.append(energy_slice.amax)
        self.tes = np.array(tes, dtype=_INT64)
        self.tls = np.array(tls, dtype=_INT64)
        self.cmin = np.array(cmin, dtype=_INT64)
        self.cmax = np.array(cmax, dtype=_INT64)
        self.durations = np.array(durations, dtype=_INT64)
        self.offsets = np.zeros(n + 1, dtype=_INT64)
        np.cumsum(self.durations, out=self.offsets[1:])
        self.amin = np.array(amin, dtype=_INT64)
        self.amax = np.array(amax, dtype=_INT64)
        self._check_representable()

    def _check_representable(self) -> None:
        """Reject populations whose *derived sums* could leave ``int64``."""
        if self.size == 0:
            return
        for values in (self.tes, self.tls, self.cmin, self.cmax, self.amin, self.amax):
            if values.size and int(np.abs(values).max()) > VALUE_LIMIT:
                raise OverflowError(
                    f"flex-offer magnitudes beyond {VALUE_LIMIT} are not "
                    "packable without risking inexact int64 sums"
                )
        if int(self.durations.max()) > SLICE_LIMIT:
            raise OverflowError(
                f"profiles longer than {SLICE_LIMIT} slices are not packable "
                "without risking inexact int64 sums"
            )

    # ------------------------------------------------------------------ #
    # Packed indexing helpers
    # ------------------------------------------------------------------ #
    @property
    def starts(self) -> np.ndarray:
        """Segment start indices (``offsets`` without the trailing total)."""
        return self.offsets[:-1]

    @cached_property
    def owner(self) -> np.ndarray:
        """Offer index of every packed slice position."""
        return np.repeat(np.arange(self.size, dtype=_INT64), self.durations)

    @cached_property
    def within(self) -> np.ndarray:
        """Slice index (0-based, per offer) of every packed position."""
        total = int(self.offsets[-1]) if self.size else 0
        return np.arange(total, dtype=_INT64) - np.repeat(
            self.starts, self.durations
        )

    def _reduce(self, ufunc: np.ufunc, values: np.ndarray) -> np.ndarray:
        """Per-offer reduction of a packed array (empty-safe)."""
        if self.size == 0:
            return np.zeros(0, dtype=values.dtype)
        return ufunc.reduceat(values, self.starts)

    # ------------------------------------------------------------------ #
    # Per-offer derived quantities
    # ------------------------------------------------------------------ #
    @cached_property
    def profile_min(self) -> np.ndarray:
        """Sum of the per-slice minima per offer."""
        return self._reduce(np.add, self.amin)

    @cached_property
    def profile_max(self) -> np.ndarray:
        """Sum of the per-slice maxima per offer."""
        return self._reduce(np.add, self.amax)

    @cached_property
    def time_flexibility(self) -> np.ndarray:
        """``tls − tes`` per offer."""
        return self.tls - self.tes

    @cached_property
    def energy_flexibility(self) -> np.ndarray:
        """``cmax − cmin`` per offer."""
        return self.cmax - self.cmin

    # ------------------------------------------------------------------ #
    # Effective bounds under the total constraints
    # ------------------------------------------------------------------ #
    @cached_property
    def effective_amin(self) -> np.ndarray:
        """Packed effective slice minima (``FlexOffer.effective_slice_bounds``)."""
        rest_max = self.profile_max[self.owner] - self.amax
        return np.maximum(self.amin, self.cmin[self.owner] - rest_max)

    @cached_property
    def effective_amax(self) -> np.ndarray:
        """Packed effective slice maxima."""
        rest_min = self.profile_min[self.owner] - self.amin
        return np.minimum(self.amax, self.cmax[self.owner] - rest_min)

    # ------------------------------------------------------------------ #
    # Sign classification (Section 2)
    # ------------------------------------------------------------------ #
    @cached_property
    def is_consumption(self) -> np.ndarray:
        """Per-offer mask: every slice non-negative (checked first, like
        :attr:`FlexOffer.kind` — an all-zero offer classifies as consumption)."""
        return self._reduce(np.minimum, self.amin) >= 0

    @cached_property
    def is_production(self) -> np.ndarray:
        """Per-offer mask: not consumption and every slice non-positive."""
        return ~self.is_consumption & (self._reduce(np.maximum, self.amax) <= 0)

    @cached_property
    def is_mixed(self) -> np.ndarray:
        """Per-offer mask: neither pure consumption nor pure production."""
        return ~self.is_consumption & ~self.is_production

    # ------------------------------------------------------------------ #
    # Area geometry (Definitions 9–10)
    # ------------------------------------------------------------------ #
    @cached_property
    def area_sizes(self) -> list[int]:
        """Union-of-areas size per offer (``flexoffer_area_size``, batch).

        Per-column extents are accumulated across the start shifts with one
        masked ``maximum``/``minimum`` sweep per shift, each covering every
        offer simultaneously; all arithmetic is integer, so the results
        equal the scalar path exactly.  Populations whose padded column
        space would exceed :data:`DENSE_CELL_LIMIT` cells are evaluated
        through the scalar loop instead.  Cached — the absolute and relative
        area measures both need the sizes during one ``evaluate_set`` pass.
        """
        from ..core.area import flexoffer_area_size

        if self.size == 0:
            return []
        duration_max = int(self.durations.max())
        shift_max = int(self.time_flexibility.max())
        width = duration_max + shift_max
        # Beyond 2^21 columns a single offer's area (width × extent, extents
        # bounded by 2·VALUE_LIMIT) could leave the exactly-representable
        # int64 range, so those populations take the big-integer scalar loop
        # alongside the dense-matrix memory cap.
        if self.size * width > DENSE_CELL_LIMIT or width > (1 << 21):
            return [flexoffer_area_size(flex_offer) for flex_offer in self.offers]
        # Per-offer padded profile of the column contributions: the padding
        # value 0 is neutral (an uncovered column spans no cells either way).
        high_pad = np.zeros((self.size, duration_max), dtype=_INT64)
        low_pad = np.zeros((self.size, duration_max), dtype=_INT64)
        high_pad[self.owner, self.within] = np.maximum(self.effective_amax, 0)
        low_pad[self.owner, self.within] = np.minimum(self.effective_amin, 0)
        extent_high = np.zeros((self.size, width), dtype=_INT64)
        extent_low = np.zeros((self.size, width), dtype=_INT64)
        time_flex = self.time_flexibility
        for shift in range(shift_max + 1):
            active = (time_flex >= shift)[:, None]
            window_high = extent_high[:, shift : shift + duration_max]
            np.maximum(window_high, high_pad, out=window_high, where=active)
            window_low = extent_low[:, shift : shift + duration_max]
            np.minimum(window_low, low_pad, out=window_low, where=active)
        return (extent_high.sum(axis=1) - extent_low.sum(axis=1)).tolist()

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def take(self, indices: Sequence[int]) -> "ProfileMatrix":
        """A new matrix over the offers at ``indices`` (order preserved).

        Used when a measure supports only part of the population; rebuilt
        from the retained offers — simple, and the subset case is rare
        enough that cleverer packed gathering is not worth its surface.
        """
        return ProfileMatrix([self.offers[int(i)] for i in indices])

    def profiles(self, packed: np.ndarray) -> list[tuple[int, ...]]:
        """Split a packed per-slice array back into per-offer tuples."""
        bounds = self.offsets.tolist()
        values = packed.tolist()
        return [
            tuple(values[bounds[i] : bounds[i + 1]]) for i in range(self.size)
        ]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProfileMatrix({self.size} offers, {int(self.offsets[-1])} slices)"
