"""The reference compute backend: the library's original per-object code.

Every operation is a plain Python loop over :class:`FlexOffer` objects,
delegating to the exact scalar entry points (``measure.value``,
``effective_slice_bounds``, ``assignment_violations``) the library shipped
with before the backend layer existed.  This backend *is* the semantics —
the NumPy backend is pinned to it by the differential conformance suite —
and it is always available, keeping the library dependency-free.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, ClassVar

from ..core.flexoffer import FlexOffer
from .dispatch import ComputeBackend, register_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..measures.base import FlexibilityMeasure

__all__ = ["ReferenceBackend"]


class ReferenceBackend(ComputeBackend):
    """Pure-Python loops over the scalar implementations."""

    name: ClassVar[str] = "reference"

    # ------------------------------------------------------------------ #
    # Measures
    # ------------------------------------------------------------------ #
    def measure_values(
        self, measure: "FlexibilityMeasure", flex_offers: Sequence[FlexOffer]
    ) -> list[float]:
        return [measure.value(flex_offer) for flex_offer in flex_offers]

    def evaluate_population(
        self,
        measures: Sequence["FlexibilityMeasure"],
        flex_offers: Sequence[FlexOffer],
        skip_unsupported: bool = True,
    ) -> tuple[dict[str, float], list[str]]:
        values: dict[str, float] = {}
        skipped: list[str] = []
        for measure in measures:
            supported = all(measure.supports(f) for f in flex_offers)
            if not supported and skip_unsupported:
                skipped.append(measure.key)
                continue
            if self._overrides_set_value(measure):
                values[measure.key] = measure.set_value(flex_offers)
            else:
                values[measure.key] = measure.combine_values(
                    self.measure_values(measure, flex_offers)
                )
        return values, skipped

    def per_offer_values(
        self,
        measures: Sequence["FlexibilityMeasure"],
        flex_offers: Sequence[FlexOffer],
    ) -> list[dict[str, float]]:
        return [
            {
                measure.key: measure.value(flex_offer)
                for measure in measures
                if measure.supports(flex_offer)
            }
            for flex_offer in flex_offers
        ]

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate_columns(
        self, members: Sequence[FlexOffer]
    ) -> tuple[int, list[int], list[tuple[int, int]]]:
        anchor = min(member.earliest_start for member in members)
        offsets = [member.earliest_start - anchor for member in members]
        horizon = max(
            offset + member.duration for offset, member in zip(offsets, members)
        )
        columns = [[0, 0] for _ in range(horizon)]
        for offset, member in zip(offsets, members):
            for index, bound in enumerate(member.effective_slice_bounds()):
                column = columns[offset + index]
                column[0] += bound.amin
                column[1] += bound.amax
        return anchor, offsets, [(low, high) for low, high in columns]

    # ------------------------------------------------------------------ #
    # Assignments
    # ------------------------------------------------------------------ #
    def feasible_profiles(
        self, flex_offers: Sequence[FlexOffer], target: str
    ) -> list[tuple[int, ...]]:
        from ..core.assignment import _feasible_profile

        return [_feasible_profile(flex_offer, target) for flex_offer in flex_offers]

    def assignment_feasibility(
        self,
        flex_offers: Sequence[FlexOffer],
        starts: Sequence[int],
        values: Sequence[Sequence[int]],
    ) -> list[bool]:
        from ..core.assignment import assignment_violations

        return [
            not assignment_violations(flex_offer, start, tuple(profile))
            for flex_offer, start, profile in zip(flex_offers, starts, values)
        ]


register_backend(ReferenceBackend())
